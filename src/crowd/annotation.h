#pragma once

#include <vector>

#include "util/matrix.h"

namespace lncl::crowd {

// Labels contributed by one annotator to one instance. For classification
// `labels` has a single entry; for sequence tasks one entry per token (an
// annotator labels the whole sentence, as in the MTurk datasets).
struct AnnotatorLabels {
  int annotator = 0;
  std::vector<int> labels;
};

// All crowd labels for one instance.
struct InstanceAnnotations {
  std::vector<AnnotatorLabels> entries;

  int NumAnnotators() const { return static_cast<int>(entries.size()); }
};

// Crowd labels for a whole dataset split. This is the noisy supervision the
// learners see; ground truth never flows through this type.
class AnnotationSet {
 public:
  AnnotationSet() = default;
  AnnotationSet(int num_instances, int num_annotators, int num_classes)
      : instances_(num_instances),
        num_annotators_(num_annotators),
        num_classes_(num_classes) {}

  int num_instances() const { return static_cast<int>(instances_.size()); }
  int num_annotators() const { return num_annotators_; }
  int num_classes() const { return num_classes_; }

  InstanceAnnotations& instance(int i) { return instances_.at(i); }
  const InstanceAnnotations& instance(int i) const { return instances_.at(i); }

  // Number of annotators who labeled instance i: num(J^(i)) in the paper.
  int NumAnnotators(int i) const { return instances_.at(i).NumAnnotators(); }

  // Total labels contributed by each annotator (item granularity).
  std::vector<long> LabelsPerAnnotator() const;

  // Total number of (instance, annotator) annotation events.
  long TotalAnnotations() const;

  // Per-instance majority-vote distributions: for every instance an
  // (items x K) matrix with the empirical label frequencies (uniform when an
  // item got no labels). This is the paper's Algorithm-1 initialization.
  std::vector<util::Matrix> MajorityVote(
      const std::vector<int>& items_per_instance) const;

 private:
  std::vector<InstanceAnnotations> instances_;
  int num_annotators_ = 0;
  int num_classes_ = 0;
};

}  // namespace lncl::crowd

