#include "crowd/annotation.h"
#include "util/check.h"


namespace lncl::crowd {

std::vector<long> AnnotationSet::LabelsPerAnnotator() const {
  std::vector<long> counts(num_annotators_, 0);
  for (const InstanceAnnotations& inst : instances_) {
    for (const AnnotatorLabels& e : inst.entries) {
      counts.at(e.annotator) += static_cast<long>(e.labels.size());
    }
  }
  return counts;
}

long AnnotationSet::TotalAnnotations() const {
  long total = 0;
  for (const InstanceAnnotations& inst : instances_) {
    total += inst.NumAnnotators();
  }
  return total;
}

std::vector<util::Matrix> AnnotationSet::MajorityVote(
    const std::vector<int>& items_per_instance) const {
  LNCL_DCHECK(items_per_instance.size() == instances_.size());
  std::vector<util::Matrix> result;
  result.reserve(instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    const int items = items_per_instance[i];
    util::Matrix q(items, num_classes_);
    std::vector<int> total(items, 0);
    for (const AnnotatorLabels& e : instances_[i].entries) {
      LNCL_DCHECK(static_cast<int>(e.labels.size()) == items);
      for (int t = 0; t < items; ++t) {
        q(t, e.labels[t]) += 1.0f;
        ++total[t];
      }
    }
    for (int t = 0; t < items; ++t) {
      if (total[t] == 0) {
        for (int k = 0; k < num_classes_; ++k) {
          q(t, k) = 1.0f / static_cast<float>(num_classes_);
        }
      } else {
        const float inv = 1.0f / static_cast<float>(total[t]);
        for (int k = 0; k < num_classes_; ++k) q(t, k) *= inv;
      }
    }
    LNCL_AUDIT_SIMPLEX(q);
    result.push_back(std::move(q));
  }
  return result;
}

}  // namespace lncl::crowd
