#include "crowd/simulator.h"

#include <algorithm>
#include <cmath>

#include "data/bio.h"
#include "util/logging.h"

namespace lncl::crowd {

namespace {

double SampleSkill(const CrowdConfig& config, util::Rng* rng) {
  const double r = rng->Uniform();
  if (r < config.frac_good) {
    return rng->Uniform(config.good_lo, config.good_hi);
  }
  if (r < config.frac_good + config.frac_mediocre) {
    return rng->Uniform(config.mediocre_lo, config.mediocre_hi);
  }
  return rng->Uniform(config.spam_lo, config.spam_hi);
}

double SampleParticipation(const CrowdConfig& config, util::Rng* rng) {
  return std::exp(rng->Gaussian(0.0, config.participation_sigma));
}

}  // namespace

CrowdSimulator CrowdSimulator::MakeClassification(const CrowdConfig& config,
                                                  int num_classes,
                                                  util::Rng* rng) {
  std::vector<AnnotatorProfile> profiles;
  profiles.reserve(config.num_annotators);
  for (int j = 0; j < config.num_annotators; ++j) {
    AnnotatorProfile p;
    p.skill = SampleSkill(config, rng);
    p.participation = SampleParticipation(config, rng);
    p.confusion = ConfusionMatrix(num_classes, 0.0);
    for (int m = 0; m < num_classes; ++m) {
      const double diag = std::clamp(
          p.skill + rng->Uniform(-config.class_bias, config.class_bias),
          1.0 / num_classes * 0.5, 0.995);
      for (int n = 0; n < num_classes; ++n) {
        p.confusion(m, n) = m == n ? static_cast<float>(diag)
                                   : static_cast<float>((1.0 - diag) /
                                                        (num_classes - 1));
      }
    }
    profiles.push_back(std::move(p));
  }
  return CrowdSimulator(config, std::move(profiles), num_classes);
}

CrowdSimulator CrowdSimulator::MakeSequence(const CrowdConfig& config,
                                            util::Rng* rng) {
  std::vector<AnnotatorProfile> profiles;
  profiles.reserve(config.num_annotators);
  for (int j = 0; j < config.num_annotators; ++j) {
    AnnotatorProfile p;
    p.skill = SampleSkill(config, rng);
    p.participation = SampleParticipation(config, rng);
    const double err = 1.0 - p.skill;
    p.ner_rates.p_ignore = config.ner_ignore * err;
    p.ner_rates.p_boundary = config.ner_boundary * err;
    p.ner_rates.p_type = config.ner_type * err;
    p.ner_rates.p_false_positive = config.ner_false_positive * err;
    profiles.push_back(std::move(p));
  }
  return CrowdSimulator(config, std::move(profiles), data::kNumBioLabels);
}

std::vector<int> CrowdSimulator::SampleAnnotators(util::Rng* rng) const {
  const int want = std::clamp(
      static_cast<int>(std::lround(
          rng->Gaussian(config_.avg_per_instance, 1.2))),
      config_.min_per_instance,
      std::min(config_.max_per_instance, num_annotators()));
  std::vector<double> weights(profiles_.size());
  for (size_t j = 0; j < profiles_.size(); ++j) {
    weights[j] = profiles_[j].participation;
  }
  std::vector<int> chosen;
  chosen.reserve(want);
  for (int c = 0; c < want; ++c) {
    const int j = rng->Categorical(weights);
    chosen.push_back(j);
    weights[j] = 0.0;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

AnnotationSet CrowdSimulator::Annotate(const data::Dataset& dataset,
                                       util::Rng* rng) const {
  LNCL_CHECK(!dataset.sequence);
  AnnotationSet out(dataset.size(), num_annotators(), num_classes_);
  for (int i = 0; i < dataset.size(); ++i) {
    const data::Instance& x = dataset.instances[i];
    // Trap instances: every annotator perceives the same wrong class.
    int perceived = x.label;
    const double trap_p = x.contrast_index >= 0 ? config_.trap_frac_contrast
                                                : config_.trap_frac;
    if (trap_p > 0.0 && rng->Bernoulli(trap_p)) {
      perceived = rng->UniformInt(num_classes_ - 1);
      if (perceived >= x.label) ++perceived;
    }
    for (int j : SampleAnnotators(rng)) {
      const AnnotatorProfile& p = profiles_[j];
      std::vector<double> row(num_classes_);
      const double keep =
          config_.difficulty_aware
              ? 1.0 - config_.difficulty_strength * x.difficulty
              : 1.0;
      const double uniform = 1.0 / num_classes_;
      for (int n = 0; n < num_classes_; ++n) {
        // Shrink the confusion row toward uniform on hard instances.
        row[n] = uniform + (p.confusion(perceived, n) - uniform) * keep;
      }
      AnnotatorLabels e;
      e.annotator = j;
      e.labels.push_back(rng->Categorical(row));
      out.instance(i).entries.push_back(std::move(e));
    }
  }
  return out;
}

AnnotationSet CrowdSimulator::AnnotateSequences(const data::Dataset& dataset,
                                                util::Rng* rng) const {
  LNCL_CHECK(dataset.sequence);
  AnnotationSet out(dataset.size(), num_annotators(), num_classes_);
  const bool has_traps = config_.seq_trap_ignore > 0.0 ||
                         config_.seq_trap_type > 0.0 ||
                         config_.seq_trap_boundary > 0.0;
  for (int i = 0; i < dataset.size(); ++i) {
    const data::Instance& x = dataset.instances[i];
    // Build the crowd-wide "perceived truth": entity-level mistakes every
    // annotator shares. Individual annotators then add their own noise.
    std::vector<int> perceived = x.tag_labels;
    if (has_traps) {
      const int n = static_cast<int>(x.tag_labels.size());
      std::vector<int> rebuilt(n, data::kO);
      for (data::EntitySpan span : data::ExtractSpans(x.tag_labels)) {
        if (rng->Bernoulli(config_.seq_trap_ignore)) continue;
        if (rng->Bernoulli(config_.seq_trap_type)) {
          int other = rng->UniformInt(data::kNumEntityTypes - 1);
          if (other >= span.type) ++other;
          span.type = other;
        }
        if (rng->Bernoulli(config_.seq_trap_boundary)) {
          if (rng->Bernoulli(0.5) && span.begin > 0) {
            --span.begin;
            --span.end;
          } else if (span.end < n) {
            ++span.begin;
            ++span.end;
          }
          span.end = std::min(std::max(span.end, span.begin + 1), n);
        }
        data::WriteSpan(span, &rebuilt);
      }
      perceived = std::move(rebuilt);
    }
    for (int j : SampleAnnotators(rng)) {
      AnnotatorLabels e;
      e.annotator = j;
      const double difficulty = config_.difficulty_aware ? x.difficulty : 0.5;
      e.labels =
          CorruptNerTags(perceived, profiles_[j].ner_rates, difficulty, rng);
      out.instance(i).entries.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace lncl::crowd
