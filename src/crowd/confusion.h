#pragma once

#include <vector>

#include "crowd/annotation.h"
#include "data/dataset.h"
#include "util/matrix.h"

namespace lncl::crowd {

// A K x K row-stochastic annotator confusion matrix: entry (m, n) is the
// probability that the annotator reports label n when the truth is m — the
// pi^{(j)}_{mn} of Eq. 2.
class ConfusionMatrix {
 public:
  ConfusionMatrix() = default;
  // Initialized to the "diagonal prior": diag probability `diag`, the rest
  // spread uniformly. diag defaults to a mildly-better-than-random 0.7.
  explicit ConfusionMatrix(int num_classes, double diag = 0.7);

  int num_classes() const { return m_.rows(); }

  float& operator()(int truth, int reported) { return m_(truth, reported); }
  float operator()(int truth, int reported) const { return m_(truth, reported); }

  util::Matrix& matrix() { return m_; }
  const util::Matrix& matrix() const { return m_; }

  // Renormalizes each row to sum to 1 after adding `smoothing` to every cell
  // (rows that were all-zero become uniform).
  void NormalizeRows(double smoothing = 1e-6);

  // Mean diagonal value: the scalar annotator-reliability summary used in
  // the paper's Figures 6(b)/7(b).
  double Reliability() const;

  // Frobenius distance to another confusion matrix of the same size.
  double Distance(const ConfusionMatrix& other) const;

 private:
  util::Matrix m_;
};

using ConfusionSet = std::vector<ConfusionMatrix>;

// Empirical confusion matrices computed from crowd labels against ground
// truth (item granularity). Annotators with no labels get uniform rows.
ConfusionSet EmpiricalConfusions(const AnnotationSet& annotations,
                                 const data::Dataset& dataset);

}  // namespace lncl::crowd

