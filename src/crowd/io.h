#pragma once

#include <istream>
#include <ostream>

#include "crowd/annotation.h"

namespace lncl::crowd {

// The "answers matrix" interchange format the MTurk releases of both paper
// datasets use: one row per instance, one whitespace-separated column per
// annotator, with the paper's 0 = "did not annotate" convention and classes
// numbered from 1. (Internally this library stores classes from 0 and
// represents absence by omission.)
//
// For sequence tasks the same convention applies per token: a sentence
// occupies `NumItems` consecutive rows and a blank line separates
// instances.

// Classification (one item per instance).
void SaveAnswersMatrix(std::ostream& os, const AnnotationSet& annotations);
// Reads rows until EOF. `num_annotators` is taken from the first row;
// `num_classes` must be supplied (values are validated against it). Returns
// false on malformed input.
bool LoadAnswersMatrix(std::istream& is, int num_classes,
                       AnnotationSet* annotations);

// Sequence variant (blank-line-separated blocks of token rows).
void SaveSequenceAnswers(std::ostream& os, const AnnotationSet& annotations,
                         const std::vector<int>& items_per_instance);
bool LoadSequenceAnswers(std::istream& is, int num_classes,
                         AnnotationSet* annotations);

}  // namespace lncl::crowd

