#pragma once

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"
#include "util/matrix.h"

namespace lncl::eval {

// A model-agnostic predictor: instance -> (items x K) distribution. Wraps
// either a raw model (student) or a rule-projected model (teacher).
using Predictor = std::function<util::Matrix(const data::Instance&)>;

Predictor ModelPredictor(const models::Model& model);

// Precision / recall / F1 triple (percentages are the caller's choice; these
// are fractions in [0, 1]).
struct PrF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

// Item-level accuracy of argmax predictions against ground truth.
double Accuracy(const Predictor& predict, const data::Dataset& dataset);

// Batched variant: predictions flow through Model::PredictBatch (bit-
// identical results to the Predictor form, same counting order, one packed
// forward per length bucket instead of one per instance).
double Accuracy(const models::Model& model, const data::Dataset& dataset);

// Accuracy of per-instance posterior estimates (items x K each) against
// ground truth — the "Inference" columns of Tables II/III for
// classification.
double PosteriorAccuracy(const std::vector<util::Matrix>& posteriors,
                         const data::Dataset& dataset);

// Strict-criteria entity span F1 (CoNLL): a predicted span counts iff its
// boundaries AND type match a gold span exactly.
PrF1 SpanF1(const std::vector<std::vector<int>>& predicted_tags,
            const data::Dataset& dataset);

// Span F1 of a model/predictor on a sequence dataset (argmax decoding).
PrF1 SpanF1(const Predictor& predict, const data::Dataset& dataset);

// Batched variant (see the batched Accuracy overload).
PrF1 SpanF1(const models::Model& model, const data::Dataset& dataset);

// Span F1 of posterior estimates on a sequence dataset — the "Inference"
// columns of Table III.
PrF1 PosteriorSpanF1(const std::vector<util::Matrix>& posteriors,
                     const data::Dataset& dataset);

// One scalar for model selection / early stopping: accuracy for
// classification datasets, span F1 for sequence datasets.
double DevScore(const Predictor& predict, const data::Dataset& dataset);

// Batched variant (see the batched Accuracy overload) — the per-epoch dev
// evaluation of every trainer goes through this.
double DevScore(const models::Model& model, const data::Dataset& dataset);

// Argmax decoding helpers.
std::vector<int> ArgmaxRows(const util::Matrix& probs);

}  // namespace lncl::eval

