#pragma once

#include <vector>

#include "crowd/confusion.h"

namespace lncl::eval {

// Comparison of estimated vs. true annotator confusion matrices, used to
// reproduce the paper's Figures 6 and 7.
struct ReliabilityReport {
  // Per annotator: estimated and empirical-truth scalar reliability (mean
  // confusion diagonal; the quantity plotted in Figs. 6(b)/7(b)).
  std::vector<double> estimated;
  std::vector<double> actual;
  // Per annotator: Frobenius distance between estimated and empirical
  // confusion matrices.
  std::vector<double> matrix_distance;
  // Aggregates over the annotators included in the report.
  double mean_abs_reliability_error = 0.0;
  double mean_matrix_distance = 0.0;
  double pearson_correlation = 0.0;  // estimated vs actual reliability
};

// Builds the report over annotators with more than `min_labels` item-level
// labels (the paper excludes anomalous annotators with <= 5 labels in
// Fig. 6(b)). `labels_per_annotator` comes from
// AnnotationSet::LabelsPerAnnotator().
ReliabilityReport CompareReliability(
    const crowd::ConfusionSet& estimated, const crowd::ConfusionSet& actual,
    const std::vector<long>& labels_per_annotator, long min_labels = 0);

// Indices of the `top_n` annotators by label volume (the paper's Fig. 6(a)/
// 7(a) selects the most prolific annotators for matrix display).
std::vector<int> TopAnnotatorsByVolume(
    const std::vector<long>& labels_per_annotator, int top_n);

}  // namespace lncl::eval

