#include "eval/metrics.h"

#include <algorithm>

#include "data/bio.h"
#include "util/check.h"

namespace lncl::eval {

Predictor ModelPredictor(const models::Model& model) {
  return [&model](const data::Instance& x) { return model.Predict(x); };
}

std::vector<int> ArgmaxRows(const util::Matrix& probs) {
  std::vector<int> out(probs.rows());
  for (int r = 0; r < probs.rows(); ++r) {
    const float* row = probs.Row(r);
    out[r] = static_cast<int>(
        std::max_element(row, row + probs.cols()) - row);
  }
  return out;
}

double Accuracy(const Predictor& predict, const data::Dataset& dataset) {
  long correct = 0;
  long total = 0;
  for (int i = 0; i < dataset.size(); ++i) {
    const util::Matrix probs = predict(dataset.instances[i]);
    const std::vector<int> pred = ArgmaxRows(probs);
    for (int t = 0; t < dataset.NumItems(i); ++t) {
      correct += pred[t] == dataset.ItemLabel(i, t);
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

double PosteriorAccuracy(const std::vector<util::Matrix>& posteriors,
                         const data::Dataset& dataset) {
  LNCL_DCHECK(static_cast<int>(posteriors.size()) == dataset.size());
  long correct = 0;
  long total = 0;
  for (int i = 0; i < dataset.size(); ++i) {
    const std::vector<int> pred = ArgmaxRows(posteriors[i]);
    for (int t = 0; t < dataset.NumItems(i); ++t) {
      correct += pred[t] == dataset.ItemLabel(i, t);
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

PrF1 SpanF1(const std::vector<std::vector<int>>& predicted_tags,
            const data::Dataset& dataset) {
  LNCL_DCHECK(static_cast<int>(predicted_tags.size()) == dataset.size());
  long predicted = 0;
  long gold = 0;
  long matched = 0;
  for (int i = 0; i < dataset.size(); ++i) {
    const auto pred_spans = data::ExtractSpans(predicted_tags[i]);
    const auto gold_spans = data::ExtractSpans(dataset.instances[i].tag_labels);
    predicted += static_cast<long>(pred_spans.size());
    gold += static_cast<long>(gold_spans.size());
    for (const data::EntitySpan& p : pred_spans) {
      for (const data::EntitySpan& g : gold_spans) {
        if (p == g) {
          ++matched;
          break;
        }
      }
    }
  }
  PrF1 r;
  r.precision = predicted > 0 ? static_cast<double>(matched) / predicted : 0.0;
  r.recall = gold > 0 ? static_cast<double>(matched) / gold : 0.0;
  r.f1 = (r.precision + r.recall) > 0.0
             ? 2.0 * r.precision * r.recall / (r.precision + r.recall)
             : 0.0;
  return r;
}

PrF1 SpanF1(const Predictor& predict, const data::Dataset& dataset) {
  std::vector<std::vector<int>> tags(dataset.size());
  for (int i = 0; i < dataset.size(); ++i) {
    tags[i] = ArgmaxRows(predict(dataset.instances[i]));
  }
  return SpanF1(tags, dataset);
}

PrF1 PosteriorSpanF1(const std::vector<util::Matrix>& posteriors,
                     const data::Dataset& dataset) {
  std::vector<std::vector<int>> tags(dataset.size());
  for (int i = 0; i < dataset.size(); ++i) {
    tags[i] = ArgmaxRows(posteriors[i]);
  }
  return SpanF1(tags, dataset);
}

double DevScore(const Predictor& predict, const data::Dataset& dataset) {
  if (dataset.sequence) return SpanF1(predict, dataset).f1;
  return Accuracy(predict, dataset);
}

double Accuracy(const models::Model& model, const data::Dataset& dataset) {
  return PosteriorAccuracy(model.PredictBatch(dataset), dataset);
}

PrF1 SpanF1(const models::Model& model, const data::Dataset& dataset) {
  return PosteriorSpanF1(model.PredictBatch(dataset), dataset);
}

double DevScore(const models::Model& model, const data::Dataset& dataset) {
  if (dataset.sequence) return SpanF1(model, dataset).f1;
  return Accuracy(model, dataset);
}

}  // namespace lncl::eval
