#include "eval/reliability.h"
#include "util/check.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lncl::eval {

ReliabilityReport CompareReliability(
    const crowd::ConfusionSet& estimated, const crowd::ConfusionSet& actual,
    const std::vector<long>& labels_per_annotator, long min_labels) {
  LNCL_DCHECK(estimated.size() == actual.size());
  LNCL_DCHECK(labels_per_annotator.size() == estimated.size());
  ReliabilityReport report;
  for (size_t j = 0; j < estimated.size(); ++j) {
    if (labels_per_annotator[j] <= min_labels) continue;
    report.estimated.push_back(estimated[j].Reliability());
    report.actual.push_back(actual[j].Reliability());
    report.matrix_distance.push_back(estimated[j].Distance(actual[j]));
  }
  const size_t n = report.estimated.size();
  if (n == 0) return report;

  double abs_err = 0.0, dist = 0.0;
  for (size_t i = 0; i < n; ++i) {
    abs_err += std::fabs(report.estimated[i] - report.actual[i]);
    dist += report.matrix_distance[i];
  }
  report.mean_abs_reliability_error = abs_err / n;
  report.mean_matrix_distance = dist / n;

  const double me =
      std::accumulate(report.estimated.begin(), report.estimated.end(), 0.0) /
      n;
  const double ma =
      std::accumulate(report.actual.begin(), report.actual.end(), 0.0) / n;
  double cov = 0.0, ve = 0.0, va = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double de = report.estimated[i] - me;
    const double da = report.actual[i] - ma;
    cov += de * da;
    ve += de * de;
    va += da * da;
  }
  report.pearson_correlation =
      (ve > 0.0 && va > 0.0) ? cov / std::sqrt(ve * va) : 0.0;
  return report;
}

std::vector<int> TopAnnotatorsByVolume(
    const std::vector<long>& labels_per_annotator, int top_n) {
  std::vector<int> idx(labels_per_annotator.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](int a, int b) {
    return labels_per_annotator[a] > labels_per_annotator[b];
  });
  if (static_cast<int>(idx.size()) > top_n) idx.resize(top_n);
  return idx;
}

}  // namespace lncl::eval
