#pragma once

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/embedding.h"
#include "data/vocab.h"
#include "util/rng.h"

namespace lncl::data {

// Synthetic stand-in for the Sentiment Polarity (MTurk) dataset [Rodrigues
// et al. 2013 / Pang & Lee 2005].
//
// Sentences are built from a planted sentiment lexicon over class-correlated
// embeddings. A configurable fraction of sentences carries an "A-but-B"
// contrastive structure in which clause A has the opposite sentiment of
// clause B and the sentence-level ground truth (almost always) follows B —
// exactly the regularity the paper's logic rule (Eqs. 16-17) encodes. A
// smaller fraction uses "however", a weaker contrast marker (used by the
// "our-other-rules" ablation): the truth follows clause B only with
// probability `however_follow_b`.
struct SentimentGenConfig {
  int embedding_dim = 32;

  int num_neutral_words = 220;
  int num_sentiment_words = 70;  // per polarity
  double weak_word_frac = 0.4;   // sentiment words with diluted embeddings
  double weak_strength = 0.25;   // embedding scale of weak sentiment words
  double signal = 0.70;          // scale of the class-mean component
  double noise = 1.0;            // per-word idiosyncratic embedding noise

  int min_len = 6;
  int max_len = 20;
  int contrast_clause_min = 3;
  int contrast_clause_max = 8;

  double p_sentiment_word = 0.48;  // slot carries clause-polarity word
  double p_opposite_word = 0.10;   // slot carries opposite-polarity word

  double but_frac = 0.18;      // sentences with "A-but-B"
  double however_frac = 0.06;  // sentences with "A-however-B"
  double but_follow_b = 0.82;  // P(truth = clause-B sentiment | "but")
  double however_follow_b = 0.60;

  // Annotation-difficulty model (drives the crowd simulator).
  double difficulty_base = 0.18;
  double difficulty_contrast = 0.30;
  double difficulty_noise = 0.12;
};

// Number of sentiment classes (negative = 0, positive = 1).
inline constexpr int kNumSentimentClasses = 2;
inline constexpr int kSentimentNegative = 0;
inline constexpr int kSentimentPositive = 1;

struct SentimentCorpus {
  Vocab vocab;
  EmbeddingPtr embeddings;
  Dataset train;
  Dataset dev;
  Dataset test;
  int but_token = -1;
  int however_token = -1;
};

// Generates a corpus with the given split sizes. All randomness flows
// through `rng`, so corpora are reproducible from the seed.
SentimentCorpus GenerateSentimentCorpus(const SentimentGenConfig& config,
                                        int train_size, int dev_size,
                                        int test_size, util::Rng* rng);

}  // namespace lncl::data

