#include "data/ner_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "data/bio.h"
#include "util/logging.h"

namespace lncl::data {

namespace {

struct NerLexicon {
  std::vector<int> begin_words[kNumEntityTypes];
  std::vector<int> inside_words[kNumEntityTypes];
  std::vector<int> cue_words[kNumEntityTypes];
  std::vector<int> o_words;
  // Per word id: 1 when the word carries an ambiguous secondary type.
  std::vector<uint8_t> ambiguous;
};

NerLexicon BuildVocabAndEmbeddings(const NerGenConfig& config, Vocab* vocab,
                                   util::Matrix* table, util::Rng* rng) {
  NerLexicon lex;
  const int dim = config.embedding_dim;

  // Pre-register all words so the table can be sized once.
  for (int t = 0; t < kNumEntityTypes; ++t) {
    const std::string& tname = EntityTypeName(t);
    for (int i = 0; i < config.begin_words_per_type; ++i) {
      lex.begin_words[t].push_back(vocab->Add(tname + "_b" + std::to_string(i)));
    }
    for (int i = 0; i < config.inside_words_per_type; ++i) {
      lex.inside_words[t].push_back(
          vocab->Add(tname + "_i" + std::to_string(i)));
    }
    for (int i = 0; i < config.cue_words_per_type; ++i) {
      lex.cue_words[t].push_back(vocab->Add(tname + "_cue" + std::to_string(i)));
    }
  }
  for (int i = 0; i < config.num_o_words; ++i) {
    lex.o_words.push_back(vocab->Add("o" + std::to_string(i)));
  }
  table->Resize(vocab->size(), dim);
  lex.ambiguous.assign(vocab->size(), 0);

  // Type directions and the positional (B vs I) directions.
  util::Matrix type_dir(kNumEntityTypes, dim);
  util::Vector begin_dir(dim), inside_dir(dim);
  for (int t = 0; t < kNumEntityTypes; ++t) {
    for (int d = 0; d < dim; ++d) {
      type_dir(t, d) = static_cast<float>(rng->Gaussian(0.0, config.type_signal));
    }
  }
  for (int d = 0; d < dim; ++d) {
    begin_dir[d] = static_cast<float>(rng->Gaussian(0.0, config.position_signal));
    inside_dir[d] =
        static_cast<float>(rng->Gaussian(0.0, config.position_signal));
  }

  auto add_noise = [&](int id) {
    float* row = table->Row(id);
    for (int d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng->Gaussian(0.0, config.noise));
    }
  };
  auto add_dir = [&](int id, const float* dir, double scale) {
    float* row = table->Row(id);
    for (int d = 0; d < dim; ++d) {
      row[d] += static_cast<float>(scale) * dir[d];
    }
  };

  for (int t = 0; t < kNumEntityTypes; ++t) {
    auto plant_entity_word = [&](int id, const util::Vector& pos_dir) {
      add_noise(id);
      add_dir(id, type_dir.Row(t), 1.0);
      add_dir(id, pos_dir.data(), 1.0);
      if (rng->Bernoulli(config.ambiguous_frac)) {
        lex.ambiguous[id] = 1;
        int other = rng->UniformInt(kNumEntityTypes - 1);
        if (other >= t) ++other;
        add_dir(id, type_dir.Row(other), config.ambiguous_mix);
      }
    };
    for (int id : lex.begin_words[t]) plant_entity_word(id, begin_dir);
    for (int id : lex.inside_words[t]) plant_entity_word(id, inside_dir);
    for (int id : lex.cue_words[t]) {
      add_noise(id);
      add_dir(id, type_dir.Row(t), config.cue_signal / config.type_signal);
    }
  }
  for (int id : lex.o_words) {
    add_noise(id);
    if (rng->Bernoulli(config.confusable_frac)) {
      const int t = rng->UniformInt(kNumEntityTypes);
      add_dir(id, type_dir.Row(t),
              config.confusable_scale / config.type_signal);
    }
  }
  return lex;
}

int SampleEntityCount(const NerGenConfig& config, util::Rng* rng) {
  const double r = rng->Uniform();
  if (r < config.p_one_entity) return 1;
  if (r < config.p_one_entity + config.p_two_entities) return 2;
  return 3;
}

int SampleEntityLength(const NerGenConfig& config, util::Rng* rng) {
  const double r = rng->Uniform();
  if (r < config.p_entity_len1) return 1;
  if (r < config.p_entity_len1 + config.p_entity_len2) return 2;
  return 3;
}

Instance MakeInstance(const NerGenConfig& config, const NerLexicon& lex,
                      util::Rng* rng) {
  Instance x;
  const int len = rng->UniformInt(config.min_len, config.max_len);
  x.tokens.assign(len, 0);
  x.tag_labels.assign(len, kO);
  for (int i = 0; i < len; ++i) {
    x.tokens[i] =
        lex.o_words[rng->UniformInt(static_cast<int>(lex.o_words.size()))];
  }

  // Place non-overlapping entities with >= 1 O-token gap between them so that
  // single-token boundary errors cannot merge entities.
  int num_ambiguous = 0;
  const int want = SampleEntityCount(config, rng);
  std::vector<std::pair<int, int>> placed;  // [begin, end)
  for (int e = 0; e < want; ++e) {
    const int elen = SampleEntityLength(config, rng);
    bool ok = false;
    int begin = 0;
    for (int attempt = 0; attempt < 20 && !ok; ++attempt) {
      begin = rng->UniformInt(std::max(1, len - elen + 1));
      ok = begin + elen <= len;
      for (const auto& [b, en] : placed) {
        if (begin < en + 1 && b < begin + elen + 1) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    placed.emplace_back(begin, begin + elen);
    const int type = rng->UniformInt(kNumEntityTypes);
    for (int i = 0; i < elen; ++i) {
      const std::vector<int>& pool =
          i == 0 ? lex.begin_words[type] : lex.inside_words[type];
      const int word = pool[rng->UniformInt(static_cast<int>(pool.size()))];
      x.tokens[begin + i] = word;
      x.tag_labels[begin + i] =
          i == 0 ? BeginLabel(type) : InsideLabel(type);
      num_ambiguous += lex.ambiguous[word];
    }
    if (begin > 0 && x.tag_labels[begin - 1] == kO &&
        rng->Bernoulli(config.p_cue_before)) {
      const std::vector<int>& pool = lex.cue_words[type];
      x.tokens[begin - 1] = pool[rng->UniformInt(static_cast<int>(pool.size()))];
    }
  }

  x.difficulty = config.difficulty_base +
                 config.difficulty_per_ambiguous * num_ambiguous +
                 rng->Gaussian(0.0, config.difficulty_noise);
  x.difficulty = std::clamp(x.difficulty, 0.0, 1.0);
  return x;
}

}  // namespace

NerCorpus GenerateNerCorpus(const NerGenConfig& config, int train_size,
                            int dev_size, int test_size, util::Rng* rng) {
  NerCorpus corpus;
  auto table = std::make_shared<EmbeddingTable>(1, config.embedding_dim);
  NerLexicon lex =
      BuildVocabAndEmbeddings(config, &corpus.vocab, &table->table(), rng);
  corpus.embeddings = table;

  auto fill = [&](Dataset* split, int size) {
    split->num_classes = kNumBioLabels;
    split->sequence = true;
    split->instances.reserve(size);
    for (int i = 0; i < size; ++i) {
      split->instances.push_back(MakeInstance(config, lex, rng));
      LNCL_CHECK(IsValidBioSequence(split->instances.back().tag_labels));
    }
  };
  fill(&corpus.train, train_size);
  fill(&corpus.dev, dev_size);
  fill(&corpus.test, test_size);
  return corpus;
}

}  // namespace lncl::data
