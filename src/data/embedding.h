#pragma once

#include <memory>
#include <vector>

#include "util/matrix.h"

namespace lncl::data {

// Static word-embedding table (vocab_size x dim).
//
// The paper uses frozen ("static") 300-d embeddings for both tasks; here the
// corpus generators plant class-correlated embeddings directly (the synthetic
// stand-in for pretrained word2vec/GloVe vectors), and models never update
// them — which keeps backprop out of the lookup.
class EmbeddingTable {
 public:
  EmbeddingTable(int vocab_size, int dim) : table_(vocab_size, dim) {}

  int dim() const { return table_.cols(); }
  int vocab_size() const { return table_.rows(); }

  util::Matrix& table() { return table_; }
  const util::Matrix& table() const { return table_; }

  // Writes one embedding row per token into `out` (resized to T x dim).
  // Out-of-range ids map to the zero padding row.
  void Lookup(const std::vector<int>& tokens, util::Matrix* out) const;

 private:
  util::Matrix table_;
};

using EmbeddingPtr = std::shared_ptr<const EmbeddingTable>;

}  // namespace lncl::data

