#include "data/sentiment_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/logging.h"

namespace lncl::data {

namespace {

struct Lexicon {
  // Word ids per polarity (index 0 = negative, 1 = positive) and neutral.
  std::vector<int> sentiment[2];
  std::vector<int> neutral;
};

// Builds the vocabulary and the planted embedding table.
Lexicon BuildVocabAndEmbeddings(const SentimentGenConfig& config, Vocab* vocab,
                                util::Matrix* table, util::Rng* rng,
                                int* but_token, int* however_token) {
  Lexicon lex;
  for (int i = 0; i < config.num_neutral_words; ++i) {
    lex.neutral.push_back(vocab->Add("w" + std::to_string(i)));
  }
  for (int pol = 0; pol < 2; ++pol) {
    const std::string prefix = pol == kSentimentPositive ? "pos" : "neg";
    for (int i = 0; i < config.num_sentiment_words; ++i) {
      lex.sentiment[pol].push_back(vocab->Add(prefix + std::to_string(i)));
    }
  }
  *but_token = vocab->Add("but");
  *however_token = vocab->Add("however");

  const int dim = config.embedding_dim;
  table->Resize(vocab->size(), dim);
  // Class mean: mu(+) = +v, mu(-) = -v with v ~ N(0, signal^2) per entry.
  util::Vector mu(dim);
  for (int d = 0; d < dim; ++d) {
    mu[d] = static_cast<float>(rng->Gaussian(0.0, config.signal));
  }
  auto fill_noise = [&](int id, double scale) {
    float* row = table->Row(id);
    for (int d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng->Gaussian(0.0, scale));
    }
  };
  for (int id : lex.neutral) fill_noise(id, config.noise);
  fill_noise(*but_token, config.noise);
  fill_noise(*however_token, config.noise);
  for (int pol = 0; pol < 2; ++pol) {
    const float sign = pol == kSentimentPositive ? 1.0f : -1.0f;
    for (int id : lex.sentiment[pol]) {
      const double strength =
          rng->Bernoulli(config.weak_word_frac) ? config.weak_strength : 1.0;
      fill_noise(id, config.noise);
      float* row = table->Row(id);
      for (int d = 0; d < dim; ++d) {
        row[d] += sign * static_cast<float>(strength) * mu[d];
      }
    }
  }
  return lex;
}

// Appends a clause of `len` tokens with polarity `pol` to `tokens`.
void EmitClause(const SentimentGenConfig& config, const Lexicon& lex, int pol,
                int len, util::Rng* rng, std::vector<int>* tokens) {
  for (int i = 0; i < len; ++i) {
    const double r = rng->Uniform();
    if (r < config.p_sentiment_word) {
      tokens->push_back(
          lex.sentiment[pol][rng->UniformInt(
              static_cast<int>(lex.sentiment[pol].size()))]);
    } else if (r < config.p_sentiment_word + config.p_opposite_word) {
      tokens->push_back(
          lex.sentiment[1 - pol][rng->UniformInt(
              static_cast<int>(lex.sentiment[1 - pol].size()))]);
    } else {
      tokens->push_back(
          lex.neutral[rng->UniformInt(static_cast<int>(lex.neutral.size()))]);
    }
  }
}

Instance MakeInstance(const SentimentGenConfig& config, const Lexicon& lex,
                      int but_token, int however_token, util::Rng* rng) {
  Instance x;
  const double r = rng->Uniform();
  const bool use_but = r < config.but_frac;
  const bool use_however = !use_but && r < config.but_frac + config.however_frac;
  if (use_but || use_however) {
    const int pol_a = rng->UniformInt(2);
    const int pol_b = 1 - pol_a;
    const int len_a =
        rng->UniformInt(config.contrast_clause_min, config.contrast_clause_max);
    const int len_b =
        rng->UniformInt(config.contrast_clause_min, config.contrast_clause_max);
    EmitClause(config, lex, pol_a, len_a, rng, &x.tokens);
    x.contrast_index = static_cast<int>(x.tokens.size());
    x.tokens.push_back(use_but ? but_token : however_token);
    EmitClause(config, lex, pol_b, len_b, rng, &x.tokens);
    const double follow_b =
        use_but ? config.but_follow_b : config.however_follow_b;
    x.label = rng->Bernoulli(follow_b) ? pol_b : pol_a;
    x.difficulty = config.difficulty_base + config.difficulty_contrast;
  } else {
    const int pol = rng->UniformInt(2);
    const int len = rng->UniformInt(config.min_len, config.max_len);
    EmitClause(config, lex, pol, len, rng, &x.tokens);
    x.label = pol;
    x.difficulty = config.difficulty_base;
  }
  x.difficulty += rng->Gaussian(0.0, config.difficulty_noise);
  x.difficulty = std::clamp(x.difficulty, 0.0, 1.0);
  return x;
}

}  // namespace

SentimentCorpus GenerateSentimentCorpus(const SentimentGenConfig& config,
                                        int train_size, int dev_size,
                                        int test_size, util::Rng* rng) {
  SentimentCorpus corpus;
  auto table = std::make_shared<EmbeddingTable>(
      config.num_neutral_words + 2 * config.num_sentiment_words + 3,
      config.embedding_dim);
  Lexicon lex =
      BuildVocabAndEmbeddings(config, &corpus.vocab, &table->table(), rng,
                              &corpus.but_token, &corpus.however_token);
  LNCL_CHECK(table->vocab_size() == corpus.vocab.size());
  corpus.embeddings = table;

  auto fill = [&](Dataset* split, int size) {
    split->num_classes = kNumSentimentClasses;
    split->sequence = false;
    split->instances.reserve(size);
    for (int i = 0; i < size; ++i) {
      split->instances.push_back(MakeInstance(
          config, lex, corpus.but_token, corpus.however_token, rng));
    }
  };
  fill(&corpus.train, train_size);
  fill(&corpus.dev, dev_size);
  fill(&corpus.test, test_size);
  return corpus;
}

}  // namespace lncl::data
