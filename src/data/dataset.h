#pragma once

#include <vector>

#include "util/rng.h"

namespace lncl::data {

// A single example.
//
// The library treats classification and sequence labeling uniformly: an
// instance consists of `NumItems` labeled "items". For sentence
// classification there is one item per instance (the whole sentence); for
// sequence tagging there is one item per token. Truth-inference, crowd
// annotation, and the Logic-LNCL E-step all operate at item granularity.
struct Instance {
  std::vector<int> tokens;  // token ids into the corpus vocabulary

  // Classification ground truth (kept for evaluation; never shown to
  // learners). -1 when unknown / sequence task.
  int label = -1;

  // Sequence ground truth, one label per token. Empty for classification.
  std::vector<int> tag_labels;

  // Index of a contrastive conjunction ("but" / "however"), or -1. Clause B
  // is tokens[contrast_index + 1 ..]. Consumed by the sentiment logic rule.
  int contrast_index = -1;

  // Generator-assigned annotation difficulty in [0, 1]; drives the
  // GLAD-style crowd simulator. Not visible to learners.
  double difficulty = 0.0;
};

// A labeled dataset (one split).
struct Dataset {
  std::vector<Instance> instances;
  int num_classes = 0;
  bool sequence = false;  // item = token (true) or whole instance (false)

  int size() const { return static_cast<int>(instances.size()); }
  int NumItems(int i) const {
    return sequence ? static_cast<int>(instances[i].tokens.size()) : 1;
  }
  // Ground-truth label of item `item` of instance `i`.
  int ItemLabel(int i, int item) const {
    return sequence ? instances[i].tag_labels[item] : instances[i].label;
  }
  // Total item count across the split.
  long TotalItems() const;
};

// Returns `count` indices sampled without replacement (subsampling for the
// sample-efficiency experiment). If count >= dataset size, returns all.
std::vector<int> SampleSubset(const Dataset& dataset, int count,
                              util::Rng* rng);

// Builds the dataset restricted to `indices`.
Dataset Subset(const Dataset& dataset, const std::vector<int>& indices);

// Extracts the clause-B sub-instance (tokens after the contrast conjunction)
// for the sentiment "A-but-B" rule. Requires contrast_index >= 0.
Instance ClauseB(const Instance& x);

}  // namespace lncl::data

