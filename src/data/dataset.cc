#include "data/dataset.h"
#include "util/check.h"


namespace lncl::data {

long Dataset::TotalItems() const {
  long total = 0;
  for (int i = 0; i < size(); ++i) total += NumItems(i);
  return total;
}

std::vector<int> SampleSubset(const Dataset& dataset, int count,
                              util::Rng* rng) {
  const int n = dataset.size();
  if (count >= n) {
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  return rng->SampleWithoutReplacement(n, count);
}

Dataset Subset(const Dataset& dataset, const std::vector<int>& indices) {
  Dataset out;
  out.num_classes = dataset.num_classes;
  out.sequence = dataset.sequence;
  out.instances.reserve(indices.size());
  for (int idx : indices) out.instances.push_back(dataset.instances[idx]);
  return out;
}

Instance ClauseB(const Instance& x) {
  LNCL_DCHECK(x.contrast_index >= 0);
  Instance b;
  b.tokens.assign(x.tokens.begin() + x.contrast_index + 1, x.tokens.end());
  b.label = x.label;
  b.difficulty = x.difficulty;
  return b;
}

}  // namespace lncl::data
