#include "data/io.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "data/bio.h"
#include "util/logging.h"

namespace lncl::data {

namespace {

// Reverse lookup of a BIO tag name; -1 when unknown.
int TagByName(const std::string& name) {
  for (int label = 0; label < kNumBioLabels; ++label) {
    if (BioLabelName(label) == name) return label;
  }
  return -1;
}

}  // namespace

void SaveConll(std::ostream& os, const Dataset& dataset, const Vocab& vocab) {
  LNCL_CHECK(dataset.sequence);
  for (const Instance& x : dataset.instances) {
    for (size_t t = 0; t < x.tokens.size(); ++t) {
      os << vocab.TokenOf(x.tokens[t]) << "\t"
         << BioLabelName(x.tag_labels[t]) << "\n";
    }
    os << "\n";
  }
}

bool LoadConll(std::istream& is, Vocab* vocab, Dataset* dataset) {
  dataset->sequence = true;
  dataset->num_classes = kNumBioLabels;
  Instance current;
  std::string line;
  auto flush = [&]() {
    if (!current.tokens.empty()) {
      dataset->instances.push_back(std::move(current));
      current = Instance();
    }
  };
  while (std::getline(is, line)) {
    if (line.empty()) {
      flush();
      continue;
    }
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) return false;
    const std::string token = line.substr(0, tab);
    const int tag = TagByName(line.substr(tab + 1));
    if (token.empty() || tag < 0) return false;
    current.tokens.push_back(vocab->Add(token));
    current.tag_labels.push_back(tag);
  }
  flush();
  return true;
}

void SaveSentimentTsv(std::ostream& os, const Dataset& dataset,
                      const Vocab& vocab) {
  for (const Instance& x : dataset.instances) {
    os << x.label << "\t";
    for (size_t t = 0; t < x.tokens.size(); ++t) {
      if (t > 0) os << " ";
      os << vocab.TokenOf(x.tokens[t]);
    }
    os << "\n";
  }
}

bool LoadSentimentTsv(std::istream& is, Vocab* vocab, Dataset* dataset) {
  dataset->sequence = false;
  std::string line;
  int max_label = dataset->num_classes - 1;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) return false;
    Instance x;
    try {
      x.label = std::stoi(line.substr(0, tab));
    } catch (...) {
      return false;
    }
    if (x.label < 0) return false;
    max_label = std::max(max_label, x.label);
    std::istringstream tokens(line.substr(tab + 1));
    std::string token;
    while (tokens >> token) x.tokens.push_back(vocab->Add(token));
    if (x.tokens.empty()) return false;
    dataset->instances.push_back(std::move(x));
  }
  dataset->num_classes = max_label + 1;
  return true;
}

}  // namespace lncl::data
