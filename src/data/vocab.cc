#include "data/vocab.h"

namespace lncl::data {

int Vocab::Add(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  ids_.emplace(token, id);
  return id;
}

int Vocab::Find(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? -1 : it->second;
}

}  // namespace lncl::data
