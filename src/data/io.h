#pragma once

#include <istream>
#include <ostream>

#include "data/dataset.h"
#include "data/vocab.h"

namespace lncl::data {

// Plain-text interchange formats, so the library can consume the real
// datasets (or any user corpus) instead of the synthetic generators.

// CoNLL-2003 column format for sequence datasets:
//
//   token<TAB>tag
//   token<TAB>tag
//   <blank line between sentences>
//
// Tags use the standard names ("O", "B-PER", ...). Save writes the dataset;
// Load appends every sentence to `dataset` (which must have sequence = true
// and num_classes = kNumBioLabels), growing `vocab` with unseen tokens.
// Load returns false on a malformed line or an unknown tag name.
void SaveConll(std::ostream& os, const Dataset& dataset, const Vocab& vocab);
bool LoadConll(std::istream& is, Vocab* vocab, Dataset* dataset);

// Sentence-classification TSV:
//
//   label<TAB>token token token ...
//
// Labels are non-negative integers. Load appends instances and grows the
// vocabulary; returns false on malformed input.
void SaveSentimentTsv(std::ostream& os, const Dataset& dataset,
                      const Vocab& vocab);
bool LoadSentimentTsv(std::istream& is, Vocab* vocab, Dataset* dataset);

}  // namespace lncl::data

