#include "data/embedding.h"

#include <algorithm>

namespace lncl::data {

void EmbeddingTable::Lookup(const std::vector<int>& tokens,
                            util::Matrix* out) const {
  out->Resize(static_cast<int>(tokens.size()), dim());
  for (size_t t = 0; t < tokens.size(); ++t) {
    const int id = tokens[t];
    if (id <= 0 || id >= vocab_size()) continue;  // zero row for pad/unknown
    const float* src = table_.Row(id);
    std::copy(src, src + dim(), out->Row(static_cast<int>(t)));
  }
}

}  // namespace lncl::data
