#include "data/bio.h"
#include "util/check.h"

#include <array>

namespace lncl::data {

int EntityTypeOf(int label) {
  LNCL_DCHECK(label >= 1 && label < kNumBioLabels);
  return (label - 1) / 2;
}

bool IsBegin(int label) { return label >= 1 && label % 2 == 1; }

bool IsInside(int label) { return label >= 2 && label % 2 == 0; }

int BeginLabel(int entity_type) { return 1 + 2 * entity_type; }

int InsideLabel(int entity_type) { return 2 + 2 * entity_type; }

const std::string& BioLabelName(int label) {
  static const std::array<std::string, kNumBioLabels> kNames = {
      "O",     "B-PER", "I-PER", "B-LOC", "I-LOC",
      "B-ORG", "I-ORG", "B-MISC", "I-MISC"};
  return kNames.at(static_cast<size_t>(label));
}

const std::string& EntityTypeName(int entity_type) {
  static const std::array<std::string, kNumEntityTypes> kNames = {
      "PER", "LOC", "ORG", "MISC"};
  return kNames.at(static_cast<size_t>(entity_type));
}

std::vector<EntitySpan> ExtractSpans(const std::vector<int>& tags) {
  std::vector<EntitySpan> spans;
  int i = 0;
  const int n = static_cast<int>(tags.size());
  while (i < n) {
    if (tags[i] == kO) {
      ++i;
      continue;
    }
    const int type = EntityTypeOf(tags[i]);
    const int begin = i;
    ++i;
    // Continue while we see I-<type>. A B-<type> starts a *new* span.
    while (i < n && tags[i] == InsideLabel(type)) ++i;
    spans.push_back({begin, i, type});
  }
  return spans;
}

void WriteSpan(const EntitySpan& span, std::vector<int>* tags) {
  LNCL_DCHECK(span.begin >= 0 && span.end <= static_cast<int>(tags->size()));
  for (int i = span.begin; i < span.end; ++i) {
    (*tags)[i] = i == span.begin ? BeginLabel(span.type) : InsideLabel(span.type);
  }
}

bool IsValidBioSequence(const std::vector<int>& tags) {
  for (size_t i = 0; i < tags.size(); ++i) {
    if (!IsInside(tags[i])) continue;
    if (i == 0) return false;
    const int type = EntityTypeOf(tags[i]);
    const int prev = tags[i - 1];
    if (prev != BeginLabel(type) && prev != InsideLabel(type)) return false;
  }
  return true;
}

}  // namespace lncl::data
