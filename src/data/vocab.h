#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace lncl::data {

// Bidirectional token <-> id mapping. Id 0 is reserved for padding ("<pad>").
class Vocab {
 public:
  Vocab() { Add("<pad>"); }

  // Returns the id of `token`, inserting it if new.
  int Add(const std::string& token);

  // Returns the id of `token` or -1 if absent.
  int Find(const std::string& token) const;

  const std::string& TokenOf(int id) const { return tokens_.at(id); }
  int size() const { return static_cast<int>(tokens_.size()); }

  static constexpr int kPadId = 0;

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace lncl::data

