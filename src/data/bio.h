#pragma once

#include <string>
#include <vector>

namespace lncl::data {

// The CoNLL-2003 BIO tag scheme used by the NER task: 9 classes covering
// begin/inside markers for four entity types plus the outside tag.
enum BioLabel : int {
  kO = 0,
  kBPer = 1,
  kIPer = 2,
  kBLoc = 3,
  kILoc = 4,
  kBOrg = 5,
  kIOrg = 6,
  kBMisc = 7,
  kIMisc = 8,
};

inline constexpr int kNumBioLabels = 9;
inline constexpr int kNumEntityTypes = 4;  // PER, LOC, ORG, MISC

// Entity-type index in [0, 4) for a non-O label.
int EntityTypeOf(int label);
bool IsBegin(int label);
bool IsInside(int label);
// B-/I- label for entity type in [0, 4).
int BeginLabel(int entity_type);
int InsideLabel(int entity_type);

// Human-readable name ("O", "B-PER", ...).
const std::string& BioLabelName(int label);
// Entity type name ("PER", ...), type in [0, 4).
const std::string& EntityTypeName(int entity_type);

// A typed entity span: tokens [begin, end) share one entity of type `type`.
struct EntitySpan {
  int begin = 0;
  int end = 0;
  int type = 0;

  friend bool operator==(const EntitySpan&, const EntitySpan&) = default;
};

// Decodes BIO tags into entity spans using the conventional CoNLL treatment:
// an I-X without a preceding B-X/I-X of the same type starts a new entity
// (crowd annotations frequently contain such fragments).
std::vector<EntitySpan> ExtractSpans(const std::vector<int>& tags);

// Writes `span` as B-X I-X ... into `tags` (must be long enough).
void WriteSpan(const EntitySpan& span, std::vector<int>* tags);

// True when the sequence contains no I-X preceded by a different-typed or O
// tag — i.e. every entity is well-formed. Ground-truth sequences from the
// generator always satisfy this; crowd labels may not.
bool IsValidBioSequence(const std::vector<int>& tags);

}  // namespace lncl::data

