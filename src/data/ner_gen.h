#pragma once

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/embedding.h"
#include "data/vocab.h"
#include "util/rng.h"

namespace lncl::data {

// Synthetic stand-in for the CoNLL-2003 NER (MTurk) dataset.
//
// Sentences are template-generated token sequences labeled with the 9-class
// BIO scheme (see data/bio.h). Each entity type owns pools of begin-,
// inside-, and cue-words whose embeddings carry a type-correlated component;
// a configurable fraction of entity words is *ambiguous* (shared signal with
// a second type) and a fraction of O-words is *confusable* (weak spurious
// type signal), which sets the Bayes error. Begin- and inside-pool words
// additionally carry a small positional component so a tagger can learn the
// B-/I- distinction — and therefore the transition regularity the paper's
// logic rules (Eqs. 18-19) encode.
struct NerGenConfig {
  int embedding_dim = 32;

  int begin_words_per_type = 30;
  int inside_words_per_type = 20;
  int cue_words_per_type = 12;
  int num_o_words = 250;

  double ambiguous_frac = 0.45;   // entity words with a secondary type
  double ambiguous_mix = 0.85;    // scale of the secondary-type component
  double confusable_frac = 0.22;  // O-words with a spurious type component
  double confusable_scale = 0.65;

  double type_signal = 0.60;     // scale of the entity-type component
  double position_signal = 0.35; // scale of the B-/I- positional component
  double cue_signal = 0.45;      // scale of type signal in cue words
  double noise = 1.0;            // idiosyncratic embedding noise

  int min_len = 8;
  int max_len = 18;
  double p_one_entity = 0.40;    // else 2 with p_two_entities, else 3
  double p_two_entities = 0.40;
  double p_entity_len1 = 0.40;   // entity length 1 / 2 / 3
  double p_entity_len2 = 0.40;
  double p_cue_before = 0.55;    // cue word immediately before an entity

  double difficulty_base = 0.25;
  double difficulty_per_ambiguous = 0.18;
  double difficulty_noise = 0.10;
};

struct NerCorpus {
  Vocab vocab;
  EmbeddingPtr embeddings;
  Dataset train;
  Dataset dev;
  Dataset test;
};

NerCorpus GenerateNerCorpus(const NerGenConfig& config, int train_size,
                            int dev_size, int test_size, util::Rng* rng);

}  // namespace lncl::data

