#include "logic/sequence_rules.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace lncl::logic {

SequenceRuleProjector::SequenceRuleProjector(util::Matrix pair_penalty)
    : pair_penalty_(std::move(pair_penalty)) {
  LNCL_CHECK(pair_penalty_.rows() == pair_penalty_.cols());
}

util::Matrix SequenceRuleProjector::Project(const data::Instance&,
                                            const util::Matrix& q,
                                            double C) const {
  const int t_len = q.rows();
  const int k = q.cols();
  LNCL_DCHECK(k == pair_penalty_.rows());
  // Input rows are unary potentials, not necessarily normalized (the DP
  // renormalizes at every step) — so only finiteness is contracted here;
  // the output marginals below must be exact simplexes.
  LNCL_AUDIT_FINITE(q);
  util::Matrix out(t_len, k);
  if (t_len == 0) return out;

  // Transition potentials psi(a, b) = exp(-C * pen(a, b)).
  util::Matrix psi(k, k);
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      psi(a, b) = static_cast<float>(std::exp(-C * pair_penalty_(a, b)));
    }
  }
  LNCL_AUDIT_FINITE(psi);

  auto normalize = [](std::vector<double>* v) {
    double sum = 0.0;
    for (double x : *v) sum += x;
    if (sum <= 1e-300) {
      const double u = 1.0 / static_cast<double>(v->size());
      for (double& x : *v) x = u;
    } else {
      for (double& x : *v) x /= sum;
    }
  };

  // Forward pass.
  std::vector<std::vector<double>> alpha(
      t_len, std::vector<double>(k, 0.0));
  for (int c = 0; c < k; ++c) alpha[0][c] = q(0, c);
  normalize(&alpha[0]);
  for (int t = 1; t < t_len; ++t) {
    for (int b = 0; b < k; ++b) {
      double s = 0.0;
      for (int a = 0; a < k; ++a) s += alpha[t - 1][a] * psi(a, b);
      alpha[t][b] = q(t, b) * s;
    }
    normalize(&alpha[t]);
  }

  // Backward pass.
  std::vector<std::vector<double>> beta(t_len, std::vector<double>(k, 1.0));
  for (int t = t_len - 2; t >= 0; --t) {
    for (int a = 0; a < k; ++a) {
      double s = 0.0;
      for (int b = 0; b < k; ++b) {
        s += psi(a, b) * q(t + 1, b) * beta[t + 1][b];
      }
      beta[t][a] = s;
    }
    normalize(&beta[t]);
  }

  for (int t = 0; t < t_len; ++t) {
    std::vector<double> marg(k);
    for (int c = 0; c < k; ++c) marg[c] = alpha[t][c] * beta[t][c];
    normalize(&marg);
    for (int c = 0; c < k; ++c) out(t, c) = static_cast<float>(marg[c]);
  }
  // Eqs. 18-19: the forward-backward marginals must come out normalized
  // (each token's row a simplex) and finite.
  LNCL_AUDIT_SIMPLEX(out);
  return out;
}

util::Matrix SequenceRuleProjector::ProjectBruteForce(const util::Matrix& q,
                                                      double C) const {
  const int t_len = q.rows();
  const int k = q.cols();
  util::Matrix out(t_len, k);
  if (t_len == 0) return out;

  std::vector<int> assign(t_len, 0);
  std::vector<double> marg(static_cast<size_t>(t_len) * k, 0.0);
  double total = 0.0;
  for (;;) {
    double w = 1.0;
    for (int t = 0; t < t_len; ++t) {
      w *= q(t, assign[t]);
      if (t > 0) w *= std::exp(-C * pair_penalty_(assign[t - 1], assign[t]));
    }
    total += w;
    for (int t = 0; t < t_len; ++t) {
      marg[static_cast<size_t>(t) * k + assign[t]] += w;
    }
    // Next assignment (odometer).
    int pos = t_len - 1;
    while (pos >= 0 && ++assign[pos] == k) {
      assign[pos] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  for (int t = 0; t < t_len; ++t) {
    for (int c = 0; c < k; ++c) {
      out(t, c) = total > 0.0
                      ? static_cast<float>(
                            marg[static_cast<size_t>(t) * k + c] / total)
                      : 1.0f / static_cast<float>(k);
    }
  }
  return out;
}

}  // namespace lncl::logic
