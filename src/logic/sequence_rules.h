#pragma once

#include "logic/posterior_reg.h"
#include "util/matrix.h"

namespace lncl::logic {

// Rule projector for sequence tasks whose rules couple *adjacent* labels
// (the paper's NER transition rules, Eqs. 18-19).
//
// With a per-item factorized q_a and pairwise rule penalties
// pen(a, b) = sum_l w_l (1 - v_l(t_{i-1}=a, t_i=b)), the Eq. 15 solution over
// whole label sequences is a chain MRF:
//
//   q_b(t_1..t_T) ∝ prod_i q_a(t_i) * prod_{i>1} exp(-C * pen(t_{i-1}, t_i))
//
// whose per-token marginals this class computes exactly with the
// forward-backward algorithm — the "dynamic programming for efficient
// computation in Equation 15" the paper refers to. Messages are renormalized
// at every step, so sequences of any length are numerically safe.
class SequenceRuleProjector : public RuleProjector {
 public:
  // pair_penalty: K x K, entry (a, b) = penalty of transition a -> b.
  explicit SequenceRuleProjector(util::Matrix pair_penalty);

  util::Matrix Project(const data::Instance& x, const util::Matrix& q,
                       double C) const override;

  // Exact (exponential-time) sequence marginals by brute-force enumeration.
  // Test oracle for short sequences only.
  util::Matrix ProjectBruteForce(const util::Matrix& q, double C) const;

  const util::Matrix& pair_penalty() const { return pair_penalty_; }

 private:
  util::Matrix pair_penalty_;
};

}  // namespace lncl::logic

