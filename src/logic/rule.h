#pragma once

#include <string>
#include <vector>

#include "logic/formula.h"

namespace lncl::logic {

// A weighted first-order soft-logic rule (R_l, w_l). The weight, in [0, 1],
// expresses credibility/importance (paper Section III-A).
struct Rule {
  Formula::Ptr formula;
  double weight = 1.0;
  std::string name;
};

// A set of weighted rules sharing one atom space.
//
// `Penalty` computes the total weighted distance-to-satisfaction
// sum_l w_l * (1 - v_l) used in the exponent of the Eq. 15 projection, for a
// single grounding (one atom interpretation).
class RuleSet {
 public:
  RuleSet() = default;

  void Add(Rule rule) { rules_.push_back(std::move(rule)); }
  void Add(Formula::Ptr formula, double weight, std::string name = "") {
    rules_.push_back({std::move(formula), weight, std::move(name)});
  }

  int size() const { return static_cast<int>(rules_.size()); }
  bool empty() const { return rules_.empty(); }
  const Rule& rule(int l) const { return rules_.at(l); }

  // sum_l w_l * (1 - I(R_l | atoms)).
  double Penalty(const std::vector<double>& atom_values) const;

  // Largest atom index used by any rule (for sizing interpretations).
  int MaxAtomIndex() const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace lncl::logic

