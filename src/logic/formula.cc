#include "logic/formula.h"

#include <algorithm>

#include "logic/soft_logic.h"
#include "util/check.h"

namespace lncl::logic {

Formula::Ptr Formula::Atom(int index, std::string name) {
  LNCL_DCHECK(index >= 0);
  if (name.empty()) name = "a" + std::to_string(index);
  return Ptr(new Formula(Kind::kAtom, index, 0.0, std::move(name), nullptr,
                         nullptr));
}

Formula::Ptr Formula::Constant(double value) {
  return Ptr(new Formula(Kind::kConstant, -1, ClampTruth(value), "", nullptr,
                         nullptr));
}

Formula::Ptr Formula::Not(Ptr a) {
  return Ptr(new Formula(Kind::kNot, -1, 0.0, "", std::move(a), nullptr));
}

Formula::Ptr Formula::And(Ptr a, Ptr b) {
  return Ptr(
      new Formula(Kind::kAnd, -1, 0.0, "", std::move(a), std::move(b)));
}

Formula::Ptr Formula::Or(Ptr a, Ptr b) {
  return Ptr(new Formula(Kind::kOr, -1, 0.0, "", std::move(a), std::move(b)));
}

Formula::Ptr Formula::Implies(Ptr a, Ptr b) {
  return Ptr(
      new Formula(Kind::kImplies, -1, 0.0, "", std::move(a), std::move(b)));
}

double Formula::Eval(const std::vector<double>& atom_values) const {
  switch (kind_) {
    case Kind::kAtom:
      LNCL_DCHECK(atom_index_ < static_cast<int>(atom_values.size()));
      return ClampTruth(atom_values[atom_index_]);
    case Kind::kConstant:
      return constant_;
    case Kind::kNot:
      return LukNot(left_->Eval(atom_values));
    case Kind::kAnd:
      return LukAnd(left_->Eval(atom_values), right_->Eval(atom_values));
    case Kind::kOr:
      return LukOr(left_->Eval(atom_values), right_->Eval(atom_values));
    case Kind::kImplies:
      return LukImplies(left_->Eval(atom_values), right_->Eval(atom_values));
  }
  return 0.0;
}

int Formula::MaxAtomIndex() const {
  switch (kind_) {
    case Kind::kAtom:
      return atom_index_;
    case Kind::kConstant:
      return -1;
    case Kind::kNot:
      return left_->MaxAtomIndex();
    default:
      return std::max(left_->MaxAtomIndex(), right_->MaxAtomIndex());
  }
}

std::string Formula::ToString() const {
  switch (kind_) {
    case Kind::kAtom:
      return name_;
    case Kind::kConstant:
      return std::to_string(constant_);
    case Kind::kNot:
      return "!" + left_->ToString();
    case Kind::kAnd:
      return "(" + left_->ToString() + " & " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " | " + right_->ToString() + ")";
    case Kind::kImplies:
      return "(" + left_->ToString() + " -> " + right_->ToString() + ")";
  }
  return "?";
}

}  // namespace lncl::logic
