#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/matrix.h"

namespace lncl::logic {

// Interface for the paper's pseudo-E-step rule projection: given a truth
// posterior q_a over an instance's items, produce the rule-regularized
// target q_b — the closed-form solution of the posterior-regularization
// problem (Eq. 14), i.e.
//
//   q_b(t) ∝ q_a(t) * exp{ -C * sum_l w_l (1 - v_l(x, t)) }        (Eq. 15)
//
// Implementations decide how rule values v_l couple the items of an
// instance: per-item (sentiment "but" rule) or between adjacent items (NER
// transition rules, computed by dynamic programming).
class RuleProjector {
 public:
  virtual ~RuleProjector() = default;

  // q: items x K, row-stochastic. Returns q_b with the same shape.
  virtual util::Matrix Project(const data::Instance& x, const util::Matrix& q,
                               double C) const = 0;

  // Projects a whole batch: (*qs)[i] is replaced by Project(*xs[i],
  // (*qs)[i], C). The base implementation loops Project; projectors whose
  // rule values consult a model (SentimentButRule's clause-B prediction)
  // override it to batch those inner predictions. Overrides must stay
  // bit-identical to the looped default.
  virtual void ProjectBatch(const std::vector<const data::Instance*>& xs,
                            std::vector<util::Matrix>* qs, double C) const;
};

// Trivial projector: q_b = q_a. Used by the w/o-Rule ablation and as the
// "no knowledge" default.
class NullProjector : public RuleProjector {
 public:
  util::Matrix Project(const data::Instance&, const util::Matrix& q,
                       double) const override {
    return q;
  }
};

// Row-independent closed form of Eq. 15. penalties(r, k) must hold
// sum_l w_l (1 - v_l(x, t_r = k)) for item r and class k. Rows of the result
// are renormalized; a row whose mass underflows falls back to q's row.
util::Matrix ProjectIndependent(const util::Matrix& q,
                                const util::Matrix& penalties, double C);

// Vector convenience overload (single item).
util::Vector ProjectCategorical(const util::Vector& q,
                                const util::Vector& penalties, double C);

}  // namespace lncl::logic

