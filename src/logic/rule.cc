#include "logic/rule.h"

#include <algorithm>

namespace lncl::logic {

double RuleSet::Penalty(const std::vector<double>& atom_values) const {
  double total = 0.0;
  for (const Rule& r : rules_) {
    total += r.weight * r.formula->DistanceToSatisfaction(atom_values);
  }
  return total;
}

int RuleSet::MaxAtomIndex() const {
  int mx = -1;
  for (const Rule& r : rules_) {
    mx = std::max(mx, r.formula->MaxAtomIndex());
  }
  return mx;
}

}  // namespace lncl::logic
