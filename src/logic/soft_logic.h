#pragma once

namespace lncl::logic {

// Łukasiewicz relaxations of the Boolean connectives used by probabilistic
// soft logic (PSL; Eq. 4 of the paper). Soft truth values live in [0, 1];
// all operators clamp their inputs to that range.

// I(a & b) = max(0, a + b - 1)
double LukAnd(double a, double b);

// I(a | b) = min(1, a + b)
double LukOr(double a, double b);

// I(!a) = 1 - a
double LukNot(double a);

// I(a -> b) = I(!a | b) = min(1, 1 - a + b)
double LukImplies(double a, double b);

// Clamps a soft truth value into [0, 1].
double ClampTruth(double v);

}  // namespace lncl::logic

