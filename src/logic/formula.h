#pragma once

#include <memory>
#include <string>
#include <vector>

namespace lncl::logic {

// Immutable first-order-logic formula AST evaluated under the Łukasiewicz
// relaxation (see soft_logic.h).
//
// Atoms are *slots*: a formula references atom indices, and a grounding
// supplies the vector of soft truth values at evaluation time. This mirrors
// PSL's separation between a rule template and its groundings — the same
// formula is evaluated once per grounding with different atom values.
class Formula {
 public:
  using Ptr = std::shared_ptr<const Formula>;

  enum class Kind { kAtom, kConstant, kNot, kAnd, kOr, kImplies };

  // Leaf referencing `atom_values[index]` at evaluation time.
  static Ptr Atom(int index, std::string name = "");
  // Constant soft truth value in [0, 1].
  static Ptr Constant(double value);
  static Ptr Not(Ptr a);
  static Ptr And(Ptr a, Ptr b);
  static Ptr Or(Ptr a, Ptr b);
  static Ptr Implies(Ptr a, Ptr b);

  // Soft truth value of the formula under the given atom interpretation.
  double Eval(const std::vector<double>& atom_values) const;

  // PSL's "distance to satisfaction": 1 - Eval(...). Zero when satisfied.
  double DistanceToSatisfaction(const std::vector<double>& atom_values) const {
    return 1.0 - Eval(atom_values);
  }

  // Largest atom index referenced (or -1 for ground constants).
  int MaxAtomIndex() const;

  // Debug rendering, e.g. "(friend(B,A) & votesFor(A,P)) -> votesFor(B,P)".
  std::string ToString() const;

  Kind kind() const { return kind_; }

 private:
  Formula(Kind kind, int atom_index, double constant, std::string name,
          Ptr left, Ptr right)
      : kind_(kind),
        atom_index_(atom_index),
        constant_(constant),
        name_(std::move(name)),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Kind kind_;
  int atom_index_ = -1;
  double constant_ = 0.0;
  std::string name_;
  Ptr left_;
  Ptr right_;
};

}  // namespace lncl::logic

