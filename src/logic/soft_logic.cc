#include "logic/soft_logic.h"

#include <algorithm>

namespace lncl::logic {

double ClampTruth(double v) { return std::clamp(v, 0.0, 1.0); }

double LukAnd(double a, double b) {
  return std::max(0.0, ClampTruth(a) + ClampTruth(b) - 1.0);
}

double LukOr(double a, double b) {
  return std::min(1.0, ClampTruth(a) + ClampTruth(b));
}

double LukNot(double a) { return 1.0 - ClampTruth(a); }

double LukImplies(double a, double b) {
  return std::min(1.0, 1.0 - ClampTruth(a) + ClampTruth(b));
}

}  // namespace lncl::logic
