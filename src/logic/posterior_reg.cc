#include "logic/posterior_reg.h"

#include <cmath>

#include "util/check.h"

namespace lncl::logic {

void RuleProjector::ProjectBatch(const std::vector<const data::Instance*>& xs,
                                 std::vector<util::Matrix>* qs,
                                 double C) const {
  LNCL_DCHECK(qs->size() == xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    (*qs)[i] = Project(*xs[i], (*qs)[i], C);
  }
}

util::Matrix ProjectIndependent(const util::Matrix& q,
                                const util::Matrix& penalties, double C) {
  LNCL_AUDIT_SHAPE(penalties, q.rows(), q.cols());
  LNCL_AUDIT_SIMPLEX(q);
  LNCL_AUDIT_FINITE(penalties);
  util::Matrix out(q.rows(), q.cols());
  for (int r = 0; r < q.rows(); ++r) {
    const float* qr = q.Row(r);
    const float* pen = penalties.Row(r);
    float* o = out.Row(r);
    double sum = 0.0;
    for (int k = 0; k < q.cols(); ++k) {
      o[k] = static_cast<float>(qr[k] * std::exp(-C * pen[k]));
      sum += o[k];
    }
    if (sum <= 1e-30) {
      // Every class fully penalized away: keep the original posterior.
      for (int k = 0; k < q.cols(); ++k) o[k] = qr[k];
    } else {
      const float inv = static_cast<float>(1.0 / sum);
      for (int k = 0; k < q.cols(); ++k) o[k] *= inv;
    }
  }
  // The Eq. 15 projection is itself a distribution per item.
  LNCL_AUDIT_SIMPLEX(out);
  return out;
}

util::Vector ProjectCategorical(const util::Vector& q,
                                const util::Vector& penalties, double C) {
  util::Matrix qm(1, static_cast<int>(q.size()));
  util::Matrix pm(1, static_cast<int>(q.size()));
  for (size_t k = 0; k < q.size(); ++k) {
    qm(0, static_cast<int>(k)) = q[k];
    pm(0, static_cast<int>(k)) = penalties[k];
  }
  util::Matrix out = ProjectIndependent(qm, pm, C);
  return util::Vector(out.Row(0), out.Row(0) + out.cols());
}

}  // namespace lncl::logic
