#include "core/trainer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lncl::core {

double RunMinibatchEpoch(const data::Dataset& dataset,
                         const std::vector<util::Matrix>& targets,
                         const std::vector<float>& weights, int batch_size,
                         models::Model* model, nn::Optimizer* optimizer,
                         util::Rng* rng) {
  assert(static_cast<int>(targets.size()) == dataset.size());
  std::vector<int> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  const std::vector<nn::Parameter*> params = model->Params();
  double total_loss = 0.0;
  int in_batch = 0;
  for (int idx : order) {
    const float w = weights.empty() ? 1.0f : weights[idx];
    model->ForwardTrain(dataset.instances[idx], rng);
    total_loss += model->BackwardSoftTarget(targets[idx], w);
    if (++in_batch == batch_size) {
      optimizer->Step(params);
      in_batch = 0;
    }
  }
  if (in_batch > 0) optimizer->Step(params);
  return dataset.size() > 0 ? total_loss / dataset.size() : 0.0;
}

util::Matrix ComputeQa(const util::Matrix& probs,
                       const crowd::InstanceAnnotations& annotations,
                       const crowd::ConfusionSet& confusions) {
  const int items = probs.rows();
  const int k = probs.cols();
  util::Matrix qa(items, k);
  for (int t = 0; t < items; ++t) {
    util::Vector lp(k);
    for (int m = 0; m < k; ++m) {
      lp[m] = static_cast<float>(
          std::log(std::max(static_cast<double>(probs(t, m)), 1e-300)));
    }
    for (const crowd::AnnotatorLabels& e : annotations.entries) {
      const int y = e.labels[t];
      const crowd::ConfusionMatrix& pi = confusions[e.annotator];
      for (int m = 0; m < k; ++m) {
        lp[m] += static_cast<float>(
            std::log(std::max(static_cast<double>(pi(m, y)), 1e-300)));
      }
    }
    float mx = lp[0];
    for (int m = 1; m < k; ++m) mx = std::max(mx, lp[m]);
    double sum = 0.0;
    for (int m = 0; m < k; ++m) {
      qa(t, m) = std::exp(lp[m] - mx);
      sum += qa(t, m);
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int m = 0; m < k; ++m) qa(t, m) *= inv;
  }
  return qa;
}

void UpdateConfusions(const std::vector<util::Matrix>& qf,
                      const crowd::AnnotationSet& annotations,
                      double smoothing, crowd::ConfusionSet* confusions) {
  const int k = annotations.num_classes();
  if (confusions->size() != static_cast<size_t>(annotations.num_annotators())) {
    confusions->assign(annotations.num_annotators(),
                       crowd::ConfusionMatrix(k, 0.7));
  }
  for (auto& pi : *confusions) pi.matrix().Zero();
  for (int i = 0; i < annotations.num_instances(); ++i) {
    const util::Matrix& q = qf[i];
    for (const crowd::AnnotatorLabels& e : annotations.instance(i).entries) {
      for (size_t t = 0; t < e.labels.size(); ++t) {
        const int row = static_cast<int>(t);
        for (int m = 0; m < k; ++m) {
          (*confusions)[e.annotator](m, e.labels[t]) += q(row, m);
        }
      }
    }
  }
  for (auto& pi : *confusions) pi.NormalizeRows(smoothing);
}

bool EarlyStopper::Update(double score,
                          const std::vector<nn::Parameter*>& params) {
  ++epoch_;
  if (score > best_score_) {
    best_score_ = score;
    best_epoch_ = epoch_ - 1;
    since_best_ = 0;
    snapshot_ = nn::SnapshotValues(params);
    return false;
  }
  return ++since_best_ >= patience_;
}

void EarlyStopper::Restore(const std::vector<nn::Parameter*>& params) const {
  if (!snapshot_.empty()) nn::RestoreValues(snapshot_, params);
}

std::vector<float> AnnotatorCountWeights(const crowd::AnnotationSet& ann) {
  std::vector<float> weights(ann.num_instances());
  for (int i = 0; i < ann.num_instances(); ++i) {
    weights[i] = static_cast<float>(ann.NumAnnotators(i));
  }
  return weights;
}

}  // namespace lncl::core
