#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "obs/trace.h"
#include "util/check.h"

namespace lncl::core {

double RunMinibatchEpoch(const data::Dataset& dataset,
                         const std::vector<util::Matrix>& targets,
                         const std::vector<float>& weights, int batch_size,
                         models::Model* model, nn::Optimizer* optimizer,
                         util::Rng* rng) {
  LNCL_DCHECK(static_cast<int>(targets.size()) == dataset.size());
  std::vector<int> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  const std::vector<nn::Parameter*> params = model->Params();
  double total_loss = 0.0;
  int in_batch = 0;
  for (int idx : order) {
    const float w = weights.empty() ? 1.0f : weights[idx];
    model->ForwardTrain(dataset.instances[idx], rng);
    total_loss += model->BackwardSoftTarget(targets[idx], w);
    if (++in_batch == batch_size) {
      optimizer->Step(params);
      in_batch = 0;
    }
  }
  if (in_batch > 0) optimizer->Step(params);
  return dataset.size() > 0 ? total_loss / dataset.size() : 0.0;
}

namespace {

// splitmix64 finalizer; decorrelates per-instance dropout seeds.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

double RunMinibatchEpochSharded(const data::Dataset& dataset,
                                const std::vector<util::Matrix>& targets,
                                const std::vector<float>& weights,
                                int batch_size, models::Model* master,
                                const std::vector<models::Model*>& slot_models,
                                nn::Optimizer* optimizer, util::Rng* rng,
                                util::Parallelizer* exec) {
  constexpr int kSlots = util::Parallelizer::kSlots;
  LNCL_DCHECK(static_cast<int>(targets.size()) == dataset.size());
  LNCL_DCHECK(static_cast<int>(slot_models.size()) == kSlots);
  const int n = dataset.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  const uint64_t epoch_seed = rng->engine()();

  const std::vector<nn::Parameter*> master_params = master->Params();
  std::vector<std::vector<nn::Parameter*>> slot_params(slot_models.size());
  for (size_t s = 0; s < slot_models.size(); ++s) {
    slot_params[s] = slot_models[s]->Params();
    LNCL_DCHECK(slot_params[s].size() == master_params.size());
  }
  const auto sync_replicas = [&] {
    for (size_t s = 0; s < slot_models.size(); ++s) {
      if (slot_models[s] == master) continue;
      for (size_t p = 0; p < master_params.size(); ++p) {
        slot_params[s][p]->value = master_params[p]->value;
      }
    }
  };
  // Replicas may be stale (previous epoch's last step, or an early-stopping
  // restore into the master).
  sync_replicas();

  double total_loss = 0.0;
  for (int start = 0; start < n; start += batch_size) {
    LNCL_TRACE_SPAN_ARG("minibatch", "start", start);
    const int len = std::min(batch_size, n - start);
    double slot_loss[kSlots] = {0.0};
    exec->RunSlots(kSlots, [&](int s) {
      LNCL_TRACE_SPAN_ARG("m_step_shard", "slot", s);
      const auto [b, e] = util::Parallelizer::SlotRange(len, s, kSlots);
      models::Model* m = slot_models[s];
      for (int p = b; p < e; ++p) {
        const int pos = start + p;  // position in the shuffled epoch order
        const int idx = order[pos];
        // Dropout stream keyed by (epoch seed, position): the sampled masks
        // are a pure function of the epoch, not of execution order.
        util::Rng inst_rng(Mix64(epoch_seed ^ static_cast<uint64_t>(pos)));
        const float w = weights.empty() ? 1.0f : weights[idx];
        m->ForwardTrain(dataset.instances[idx], &inst_rng);
        slot_loss[s] += m->BackwardSoftTarget(targets[idx], w);
      }
    });
    // Fixed-order reduction: losses and gradients merge in slot index order
    // no matter which thread ran which slot.
    for (int s = 0; s < kSlots; ++s) total_loss += slot_loss[s];
    for (int s = 0; s < kSlots; ++s) {
      if (slot_models[s] == master) continue;
      for (size_t p = 0; p < master_params.size(); ++p) {
        master_params[p]->grad.AddScaled(slot_params[s][p]->grad, 1.0f);
        slot_params[s][p]->grad.Zero();
      }
    }
    optimizer->Step(master_params);
    sync_replicas();
  }
  return n > 0 ? total_loss / n : 0.0;
}

util::Matrix ComputeQa(const util::Matrix& probs,
                       const crowd::InstanceAnnotations& annotations,
                       const crowd::ConfusionSet& confusions) {
  const int items = probs.rows();
  const int k = probs.cols();
  util::Matrix qa(items, k);
  for (int t = 0; t < items; ++t) {
    util::Vector lp(k);
    for (int m = 0; m < k; ++m) {
      lp[m] = static_cast<float>(
          std::log(std::max(static_cast<double>(probs(t, m)), 1e-300)));
    }
    for (const crowd::AnnotatorLabels& e : annotations.entries) {
      const int y = e.labels[t];
      const crowd::ConfusionMatrix& pi = confusions[e.annotator];
      for (int m = 0; m < k; ++m) {
        lp[m] += static_cast<float>(
            std::log(std::max(static_cast<double>(pi(m, y)), 1e-300)));
      }
    }
    float mx = lp[0];
    for (int m = 1; m < k; ++m) mx = std::max(mx, lp[m]);
    double sum = 0.0;
    for (int m = 0; m < k; ++m) {
      qa(t, m) = std::exp(lp[m] - mx);
      sum += qa(t, m);
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int m = 0; m < k; ++m) qa(t, m) *= inv;
  }
  // Eq. 13: the truth posterior is a distribution per item.
  LNCL_AUDIT_SIMPLEX(qa);
  return qa;
}

std::vector<util::Matrix> LogConfusions(const crowd::ConfusionSet& confusions) {
  std::vector<util::Matrix> logs(confusions.size());
  for (size_t a = 0; a < confusions.size(); ++a) {
    const crowd::ConfusionMatrix& pi = confusions[a];
    const int k = pi.num_classes();
    logs[a].ResizeNoZero(k, k);
    for (int m = 0; m < k; ++m) {
      for (int y = 0; y < k; ++y) {
        logs[a](m, y) = static_cast<float>(
            std::log(std::max(static_cast<double>(pi(m, y)), 1e-300)));
      }
    }
  }
  return logs;
}

util::Matrix ComputeQa(const util::Matrix& probs,
                       const crowd::InstanceAnnotations& annotations,
                       const std::vector<util::Matrix>& log_confusions) {
  const int items = probs.rows();
  const int k = probs.cols();
  util::Matrix qa(items, k);
  for (int t = 0; t < items; ++t) {
    util::Vector lp(k);
    for (int m = 0; m < k; ++m) {
      lp[m] = static_cast<float>(
          std::log(std::max(static_cast<double>(probs(t, m)), 1e-300)));
    }
    for (const crowd::AnnotatorLabels& e : annotations.entries) {
      const int y = e.labels[t];
      const util::Matrix& log_pi = log_confusions[e.annotator];
      for (int m = 0; m < k; ++m) {
        lp[m] += log_pi(m, y);
      }
    }
    float mx = lp[0];
    for (int m = 1; m < k; ++m) mx = std::max(mx, lp[m]);
    double sum = 0.0;
    for (int m = 0; m < k; ++m) {
      qa(t, m) = std::exp(lp[m] - mx);
      sum += qa(t, m);
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int m = 0; m < k; ++m) qa(t, m) *= inv;
  }
  // Eq. 13: the truth posterior is a distribution per item.
  LNCL_AUDIT_SIMPLEX(qa);
  return qa;
}

void UpdateConfusions(const std::vector<util::Matrix>& qf,
                      const crowd::AnnotationSet& annotations,
                      double smoothing, crowd::ConfusionSet* confusions,
                      util::Parallelizer* exec) {
  const int k = annotations.num_classes();
  const int num_annotators = annotations.num_annotators();
  if (confusions->size() != static_cast<size_t>(num_annotators)) {
    confusions->assign(num_annotators, crowd::ConfusionMatrix(k, 0.7));
  }
  for (auto& pi : *confusions) pi.matrix().Zero();
  if (exec == nullptr) {
    for (int i = 0; i < annotations.num_instances(); ++i) {
      const util::Matrix& q = qf[i];
      for (const crowd::AnnotatorLabels& e : annotations.instance(i).entries) {
        for (size_t t = 0; t < e.labels.size(); ++t) {
          const int row = static_cast<int>(t);
          for (int m = 0; m < k; ++m) {
            (*confusions)[e.annotator](m, e.labels[t]) += q(row, m);
          }
        }
      }
    }
  } else {
    // Sharded accumulation: per-slot count buffers over a fixed static
    // partition of the instances, merged in slot order.
    constexpr int kSlots = util::Parallelizer::kSlots;
    std::vector<std::vector<util::Matrix>> acc(kSlots);
    exec->RunSlots(kSlots, [&](int s) {
      LNCL_TRACE_SPAN_ARG("confusion_shard", "slot", s);
      acc[s].assign(num_annotators, util::Matrix(k, k));
      const auto [b, e_end] = util::Parallelizer::SlotRange(
          annotations.num_instances(), s, kSlots);
      for (int i = b; i < e_end; ++i) {
        const util::Matrix& q = qf[i];
        for (const crowd::AnnotatorLabels& e :
             annotations.instance(i).entries) {
          util::Matrix& counts = acc[s][e.annotator];
          for (size_t t = 0; t < e.labels.size(); ++t) {
            const int row = static_cast<int>(t);
            for (int m = 0; m < k; ++m) {
              counts(m, e.labels[t]) += q(row, m);
            }
          }
        }
      }
    });
    for (int s = 0; s < kSlots; ++s) {
      for (int a = 0; a < num_annotators; ++a) {
        (*confusions)[a].matrix().AddScaled(acc[s][a], 1.0f);
      }
    }
  }
  // NormalizeRows audits each matrix row-stochastic (Eq. 12).
  for (auto& pi : *confusions) pi.NormalizeRows(smoothing);
}

bool EarlyStopper::Update(double score,
                          const std::vector<nn::Parameter*>& params) {
  ++epoch_;
  if (score > best_score_) {
    best_score_ = score;
    best_epoch_ = epoch_ - 1;
    since_best_ = 0;
    snapshot_ = nn::SnapshotValues(params);
    return false;
  }
  return ++since_best_ >= patience_;
}

void EarlyStopper::Restore(const std::vector<nn::Parameter*>& params) const {
  if (!snapshot_.empty()) nn::RestoreValues(snapshot_, params);
}

std::vector<float> AnnotatorCountWeights(const crowd::AnnotationSet& ann) {
  std::vector<float> weights(ann.num_instances());
  for (int i = 0; i < ann.num_instances(); ++i) {
    weights[i] = static_cast<float>(ann.NumAnnotators(i));
  }
  return weights;
}

}  // namespace lncl::core
