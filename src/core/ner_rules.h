#pragma once

#include <memory>

#include "logic/rule.h"
#include "logic/sequence_rules.h"
#include "util/matrix.h"

namespace lncl::core {

// The paper's NER transition rules (Eqs. 18-19) state that an inside label
// can only continue an entity of the same type:
//
//   equal(t_i, I-X) => equal(t_{i-1}, B-X)        (Eq. 18)
//   equal(t_i, I-X) => equal(t_{i-1}, I-X)        (Eq. 19)
//
// The *logical content* of the pair is the disjunction
//
//   equal(t_i, I-X) => equal(t_{i-1}, B-X) | equal(t_{i-1}, I-X)
//
// which is how the primary rule set below encodes it (weight 1): only
// invalid predecessors are penalized, valid continuations are free. This is
// the reading under which the rules help the teacher, as in the paper.
//
// The literal two-rule form with the paper's example weights (0.8 / 0.2)
// additionally expresses a *frequency prior* over the two valid
// predecessors; it penalizes I-X -> I-X continuations with weight w_begin and
// is exposed as `BuildNerTransitionPenaltyWeighted` for the ablation benches
// (with w_inside = 0 it becomes the paper's "unrealistic rule" ablation that
// collapses the teacher).

// Primary rule: pen(a, I-X) = 1 unless a is B-X or I-X; all transitions into
// non-inside labels are unconstrained.
util::Matrix BuildNerTransitionPenalty();

// Literal Eqs. 18-19 with rule weights:
// pen(a, I-X) = w_begin * (1 - [a = B-X]) + w_inside * (1 - [a = I-X]).
util::Matrix BuildNerTransitionPenaltyWeighted(double w_begin,
                                               double w_inside);

// The "our-other-rules" ablation (Table IV): the unrealistic assumption that
// I-X may ONLY be preceded by B-X (Eq. 18 alone with weight 1), which
// penalizes every I-X -> I-X continuation and therefore fragments multi-token
// entities — catastrophically so for the teacher, which applies the rule at
// test time.
util::Matrix BuildBadNerTransitionPenalty();

// Forward-backward projectors over the above penalty matrices.
std::unique_ptr<logic::SequenceRuleProjector> MakeNerRuleProjector();
std::unique_ptr<logic::SequenceRuleProjector> MakeWeightedNerRuleProjector(
    double w_begin = 0.8, double w_inside = 0.2);
std::unique_ptr<logic::SequenceRuleProjector> MakeBadNerRuleProjector();

// The PSL rule sets for one entity type (atoms: 0 = equal(t_prev, B-X),
// 1 = equal(t_prev, I-X), 2 = equal(t_cur, I-X)). Exposed for tests.
logic::RuleSet MakeTypeValidityRule();
logic::RuleSet MakeTypeTransitionRules(double w_begin, double w_inside);

}  // namespace lncl::core

