#include "core/sentiment_rules.h"

#include <mutex>

#include "data/sentiment_gen.h"
#include "util/check.h"

namespace lncl::core {

using logic::Formula;

SentimentButRule::SentimentButRule(const models::Model* model,
                                   int marker_token, double weight)
    : model_(model), marker_token_(marker_token) {
  // positive(S) -> sigma(B)+ ; negative(S) -> sigma(B)-.
  rules_.Add(Formula::Implies(Formula::Atom(0, "positive(S)"),
                              Formula::Atom(1, "sigmaB+")),
             weight, "but-positive");
  rules_.Add(Formula::Implies(Formula::Atom(2, "negative(S)"),
                              Formula::Atom(3, "sigmaB-")),
             weight, "but-negative");
}

bool SentimentButRule::GroundingFormed(const data::Instance& x) const {
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    const auto it = grounding_cache_.find(&x);
    if (it != grounding_cache_.end()) return it->second;
  }
  const bool formed =
      !(x.contrast_index < 0 || x.tokens[x.contrast_index] != marker_token_ ||
        x.contrast_index + 1 >= static_cast<int>(x.tokens.size()));
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  grounding_cache_.emplace(&x, formed);
  return formed;
}

util::Matrix SentimentButRule::ApplyRule(const util::Matrix& q,
                                         const util::Matrix& pb,
                                         double C) const {
  const double pb_pos = pb(0, data::kSentimentPositive);
  const double pb_neg = pb(0, data::kSentimentNegative);

  util::Matrix penalties(1, data::kNumSentimentClasses);
  for (int k = 0; k < data::kNumSentimentClasses; ++k) {
    const double is_pos = k == data::kSentimentPositive ? 1.0 : 0.0;
    const double is_neg = 1.0 - is_pos;
    penalties(0, k) = static_cast<float>(
        rules_.Penalty({is_pos, pb_pos, is_neg, pb_neg}));
  }
  return logic::ProjectIndependent(q, penalties, C);
}

util::Matrix SentimentButRule::Project(const data::Instance& x,
                                       const util::Matrix& q,
                                       double C) const {
  LNCL_DCHECK(q.rows() == 1 && q.cols() == data::kNumSentimentClasses);
  if (!GroundingFormed(x)) return q;
  return ApplyRule(q, model_->Predict(data::ClauseB(x)), C);
}

void SentimentButRule::ProjectBatch(
    const std::vector<const data::Instance*>& xs,
    std::vector<util::Matrix>* qs, double C) const {
  LNCL_DCHECK(qs->size() == xs.size());
  std::vector<int> grounded;
  std::vector<data::Instance> clause_b;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (GroundingFormed(*xs[i])) {
      grounded.push_back(static_cast<int>(i));
      clause_b.push_back(data::ClauseB(*xs[i]));
    }
  }
  if (grounded.empty()) return;

  // One batched prediction over every grounded B clause.
  std::vector<const data::Instance*> clause_ptrs;
  clause_ptrs.reserve(clause_b.size());
  for (const data::Instance& cb : clause_b) clause_ptrs.push_back(&cb);
  std::vector<util::Matrix> pbs;
  model_->PredictBatch(clause_ptrs, &pbs);

  for (size_t j = 0; j < grounded.size(); ++j) {
    util::Matrix& q = (*qs)[grounded[j]];
    LNCL_DCHECK(q.rows() == 1 && q.cols() == data::kNumSentimentClasses);
    q = ApplyRule(q, pbs[j], C);
  }
}

}  // namespace lncl::core
