#include "core/sentiment_rules.h"

#include <cassert>

#include "data/sentiment_gen.h"

namespace lncl::core {

using logic::Formula;

SentimentButRule::SentimentButRule(const models::Model* model,
                                   int marker_token, double weight)
    : model_(model), marker_token_(marker_token) {
  // positive(S) -> sigma(B)+ ; negative(S) -> sigma(B)-.
  rules_.Add(Formula::Implies(Formula::Atom(0, "positive(S)"),
                              Formula::Atom(1, "sigmaB+")),
             weight, "but-positive");
  rules_.Add(Formula::Implies(Formula::Atom(2, "negative(S)"),
                              Formula::Atom(3, "sigmaB-")),
             weight, "but-negative");
}

util::Matrix SentimentButRule::Project(const data::Instance& x,
                                       const util::Matrix& q,
                                       double C) const {
  assert(q.rows() == 1 && q.cols() == data::kNumSentimentClasses);
  if (x.contrast_index < 0 ||
      x.tokens[x.contrast_index] != marker_token_ ||
      x.contrast_index + 1 >= static_cast<int>(x.tokens.size())) {
    return q;  // no grounding formed
  }
  const util::Matrix pb = model_->Predict(data::ClauseB(x));
  const double pb_pos = pb(0, data::kSentimentPositive);
  const double pb_neg = pb(0, data::kSentimentNegative);

  util::Matrix penalties(1, data::kNumSentimentClasses);
  for (int k = 0; k < data::kNumSentimentClasses; ++k) {
    const double is_pos = k == data::kSentimentPositive ? 1.0 : 0.0;
    const double is_neg = 1.0 - is_pos;
    penalties(0, k) = static_cast<float>(
        rules_.Penalty({is_pos, pb_pos, is_neg, pb_neg}));
  }
  return logic::ProjectIndependent(q, penalties, C);
}

}  // namespace lncl::core
