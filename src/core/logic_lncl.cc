#include "core/logic_lncl.h"

#include <cmath>

#include "eval/metrics.h"
#include "inference/truth_inference.h"
#include "nn/serialize.h"
#include "util/logging.h"
#include "util/timer.h"

namespace lncl::core {

KSchedule SentimentKSchedule() {
  return [](int epoch) {
    return std::min(1.0, 1.0 - std::pow(0.94, static_cast<double>(epoch + 1)));
  };
}

KSchedule NerKSchedule() {
  return [](int epoch) {
    return std::min(0.8, 1.0 - std::pow(0.90, static_cast<double>(epoch + 1)));
  };
}

KSchedule ConstantK(double k) {
  return [k](int) { return k; };
}

LogicLncl::LogicLncl(LogicLnclConfig config, models::ModelFactory factory,
                     const logic::RuleProjector* projector)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      projector_(projector) {
  if (!config_.k_schedule) config_.k_schedule = ConstantK(0.0);
}

LogicLncl::LogicLncl(LogicLnclConfig config,
                     std::unique_ptr<models::Model> model,
                     const logic::RuleProjector* projector,
                     models::ModelFactory replica_factory)
    : config_(std::move(config)),
      factory_(std::move(replica_factory)),
      projector_(projector) {
  if (!config_.k_schedule) config_.k_schedule = ConstantK(0.0);
  model_ = std::move(model);
}

LogicLnclResult LogicLncl::Fit(const data::Dataset& train,
                               const crowd::AnnotationSet& annotations,
                               const data::Dataset& dev, util::Rng* rng) {
  return FitInternal(train, annotations, {}, dev, rng);
}

LogicLnclResult LogicLncl::FitSemiSupervised(
    const data::Dataset& train, const crowd::AnnotationSet& annotations,
    const std::vector<int>& gold_indices, const data::Dataset& dev,
    util::Rng* rng) {
  return FitInternal(train, annotations, gold_indices, dev, rng);
}

LogicLnclResult LogicLncl::FitInternal(const data::Dataset& train,
                                       const crowd::AnnotationSet& annotations,
                                       const std::vector<int>& gold_indices,
                                       const data::Dataset& dev,
                                       util::Rng* rng) {
  LogicLnclResult result;
  if (!model_) model_ = factory_(rng);
  std::unique_ptr<nn::Optimizer> optimizer =
      nn::MakeOptimizer(config_.optimizer);
  const std::vector<nn::Parameter*> params = model_->Params();

  // Deterministic parallel execution (config_.threads >= 1): a fixed slot
  // structure makes every reduction order independent of the thread count,
  // so any threads >= 1 produces bit-identical results. threads == 0 keeps
  // the legacy serial trajectory.
  const bool sharded = config_.threads >= 1;
  util::Parallelizer exec(std::max(1, config_.threads));
  std::vector<std::unique_ptr<models::Model>> replicas;
  std::vector<models::Model*> slot_models;
  if (sharded && factory_) {
    // Replica initial weights are irrelevant (values are synced from the
    // master before every batch); a fixed-seed throwaway rng keeps the
    // caller's stream untouched.
    util::Rng replica_rng(0x51ced0c5u);
    slot_models.push_back(model_.get());
    for (int s = 1; s < util::Parallelizer::kSlots; ++s) {
      replicas.push_back(factory_(&replica_rng));
      slot_models.push_back(replicas.back().get());
    }
  }

  // Line 1 of Algorithm 1: initialize q_f with Majority Voting.
  qf_ = annotations.MajorityVote(inference::ItemsPerInstance(train));
  confusions_.clear();

  // Semi-supervised anchors: one-hot gold targets that the E-step preserves.
  auto anchor = [&]() {
    for (int idx : gold_indices) {
      util::Matrix& q = qf_[idx];
      q.Zero();
      for (int t = 0; t < q.rows(); ++t) {
        q(t, train.ItemLabel(idx, t)) = 1.0f;
      }
    }
  };
  anchor();

  const std::vector<float> weights =
      config_.weighted_loss ? AnnotatorCountWeights(annotations)
                            : std::vector<float>();

  EarlyStopper stopper(config_.patience);
  std::vector<util::Matrix> best_qf = qf_;
  crowd::ConfusionSet best_confusions;

  const eval::Predictor student = [this](const data::Instance& x) {
    return model_->Predict(x);
  };

  util::Stopwatch fit_timer;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    util::Stopwatch phase;
    nn::ApplyLrSchedule(config_.optimizer, epoch, optimizer.get());

    // ---- Pseudo-M-step: network (Eq. 8/10/11), then annotators (Eq. 12).
    const double loss =
        slot_models.empty()
            ? RunMinibatchEpoch(train, qf_, weights, config_.batch_size,
                                model_.get(), optimizer.get(), rng)
            : RunMinibatchEpochSharded(train, qf_, weights, config_.batch_size,
                                       model_.get(), slot_models,
                                       optimizer.get(), rng, &exec);
    result.loss_curve.push_back(loss);
    result.phase_seconds.m_step += phase.Lap();
    UpdateConfusions(qf_, annotations, config_.confusion_smoothing,
                     &confusions_, sharded ? &exec : nullptr);
    result.phase_seconds.confusion += phase.Lap();

    // ---- Pseudo-E-step: q_a (Eq. 13), q_b (Eq. 15), q_f (Eq. 9).
    // Instances are independent (each slot writes only its own qf_ rows), so
    // the parallel sweep is deterministic regardless of slot structure.
    const double k = config_.k_schedule(epoch);
    const bool project =
        projector_ != nullptr && config_.use_rules_in_training && k > 0.0;
    // Hoisted likelihood logs (once per annotator per epoch rather than once
    // per labeled instance; same float values as the in-line logs).
    const std::vector<util::Matrix> log_pi =
        config_.batch_predict ? LogConfusions(confusions_)
                              : std::vector<util::Matrix>();
    exec.RunSlots(util::Parallelizer::kSlots, [&](int slot) {
      const auto [begin, end] = util::Parallelizer::SlotRange(
          train.size(), slot, util::Parallelizer::kSlots);
      if (config_.batch_predict) {
        if (begin >= end) return;
        std::vector<const data::Instance*> xs;
        xs.reserve(end - begin);
        for (int i = begin; i < end; ++i) xs.push_back(&train.instances[i]);
        std::vector<util::Matrix> probs;
        model_->PredictBatch(xs, &probs);
        std::vector<util::Matrix> qa(xs.size());
        for (int i = begin; i < end; ++i) {
          qa[i - begin] =
              ComputeQa(probs[i - begin], annotations.instance(i), log_pi);
        }
        if (project) {
          // ProjectBatch rewrites in place, so q_a is copied to blend below.
          std::vector<util::Matrix> qb = qa;
          projector_->ProjectBatch(xs, &qb, config_.C);
          for (size_t j = 0; j < qa.size(); ++j) {
            util::Matrix& qaj = qa[j];
            const util::Matrix& qbj = qb[j];
            for (int t = 0; t < qaj.rows(); ++t) {
              for (int c = 0; c < qaj.cols(); ++c) {
                qaj(t, c) = static_cast<float>((1.0 - k) * qaj(t, c) +
                                               k * qbj(t, c));
              }
            }
          }
        }
        // Eq. 9 blend of two simplexes stays a simplex.
        for (const util::Matrix& q : qa) LNCL_AUDIT_SIMPLEX(q);
        for (int i = begin; i < end; ++i) qf_[i] = std::move(qa[i - begin]);
        return;
      }
      for (int i = begin; i < end; ++i) {
        const data::Instance& x = train.instances[i];
        const util::Matrix probs = model_->Predict(x);
        util::Matrix qa =
            ComputeQa(probs, annotations.instance(i), confusions_);
        if (project) {
          const util::Matrix qb = projector_->Project(x, qa, config_.C);
          for (int t = 0; t < qa.rows(); ++t) {
            for (int c = 0; c < qa.cols(); ++c) {
              qa(t, c) = static_cast<float>((1.0 - k) * qa(t, c) +
                                            k * qb(t, c));
            }
          }
        }
        LNCL_AUDIT_SIMPLEX(qa);
        qf_[i] = std::move(qa);
      }
    });
    anchor();
    result.phase_seconds.e_step += phase.Lap();

    // ---- Model selection on dev.
    const double dev_score = config_.batch_predict
                                 ? eval::DevScore(*model_, dev)
                                 : eval::DevScore(student, dev);
    result.phase_seconds.dev_eval += phase.Lap();
    result.dev_curve.push_back(dev_score);
    const int prev_best = stopper.best_epoch();
    const bool stop = stopper.Update(dev_score, params);
    if (stopper.best_epoch() != prev_best) {
      best_qf = qf_;
      best_confusions = confusions_;
    }
    LNCL_LOG(Debug) << "epoch " << epoch << " loss " << loss << " dev "
                    << dev_score << " k " << k;
    if (stop) break;
  }

  stopper.Restore(params);
  if (!best_confusions.empty()) {
    qf_ = std::move(best_qf);
    confusions_ = std::move(best_confusions);
  }
  result.best_dev_score = stopper.best_score();
  result.best_epoch = stopper.best_epoch();
  result.epochs_run = stopper.epochs_seen();
  result.phase_seconds.total = fit_timer.Seconds();
  return result;
}

void LogicLncl::SaveModel(std::ostream& os) const {
  LNCL_CHECK(model_ != nullptr);
  nn::SaveParams(os, const_cast<models::Model*>(model_.get())->Params());
}

bool LogicLncl::LoadModel(std::istream& is) {
  if (model_ == nullptr) return false;
  return nn::LoadParams(is, model_->Params());
}

util::Matrix LogicLncl::PredictStudent(const data::Instance& x) const {
  return model_->Predict(x);
}

util::Matrix LogicLncl::PredictTeacher(const data::Instance& x) const {
  util::Matrix probs = model_->Predict(x);
  if (projector_ == nullptr) return probs;
  return projector_->Project(x, probs, config_.C);
}

std::vector<util::Matrix> LogicLncl::PredictStudentBatch(
    const data::Dataset& dataset) const {
  return model_->PredictBatch(dataset);
}

std::vector<util::Matrix> LogicLncl::PredictTeacherBatch(
    const data::Dataset& dataset) const {
  std::vector<const data::Instance*> xs;
  xs.reserve(dataset.instances.size());
  for (const data::Instance& x : dataset.instances) xs.push_back(&x);
  std::vector<util::Matrix> probs;
  model_->PredictBatch(xs, &probs);
  if (projector_ != nullptr) projector_->ProjectBatch(xs, &probs, config_.C);
  return probs;
}

}  // namespace lncl::core
