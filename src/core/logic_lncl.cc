#include "core/logic_lncl.h"

#include <algorithm>
#include <cmath>

#include "eval/metrics.h"
#include "inference/truth_inference.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace lncl::core {

namespace {

// Read-only projection diagnostics (Eq. 15) for the run observer: KL(q_a‖q_b)
// summed over projected rows, and how many rows kept their argmax through the
// projection. Accumulated per Parallelizer slot and merged in slot order, so
// the reported means are identical for every threads setting.
struct ProjectionStats {
  double kl_sum = 0.0;
  int64_t rows = 0;
  int64_t argmax_kept = 0;

  void Accumulate(const util::Matrix& qa, const util::Matrix& qb) {
    for (int t = 0; t < qa.rows(); ++t) {
      double kl = 0.0;
      int arg_a = 0;
      int arg_b = 0;
      for (int c = 0; c < qa.cols(); ++c) {
        const double a = qa(t, c);
        const double b = qb(t, c);
        if (a > 0.0) kl += a * std::log(a / std::max(b, 1e-12));
        if (qa(t, c) > qa(t, arg_a)) arg_a = c;
        if (qb(t, c) > qb(t, arg_b)) arg_b = c;
      }
      kl_sum += std::max(0.0, kl);
      ++rows;
      if (arg_a == arg_b) ++argmax_kept;
    }
  }

  void Merge(const ProjectionStats& other) {
    kl_sum += other.kl_sum;
    rows += other.rows;
    argmax_kept += other.argmax_kept;
  }
};

}  // namespace

KSchedule SentimentKSchedule() {
  return [](int epoch) {
    return std::min(1.0, 1.0 - std::pow(0.94, static_cast<double>(epoch + 1)));
  };
}

KSchedule NerKSchedule() {
  return [](int epoch) {
    return std::min(0.8, 1.0 - std::pow(0.90, static_cast<double>(epoch + 1)));
  };
}

KSchedule ConstantK(double k) {
  return [k](int) { return k; };
}

LogicLncl::LogicLncl(LogicLnclConfig config, models::ModelFactory factory,
                     const logic::RuleProjector* projector)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      projector_(projector) {
  if (!config_.k_schedule) config_.k_schedule = ConstantK(0.0);
}

LogicLncl::LogicLncl(LogicLnclConfig config,
                     std::unique_ptr<models::Model> model,
                     const logic::RuleProjector* projector,
                     models::ModelFactory replica_factory)
    : config_(std::move(config)),
      factory_(std::move(replica_factory)),
      projector_(projector) {
  if (!config_.k_schedule) config_.k_schedule = ConstantK(0.0);
  model_ = std::move(model);
}

LogicLnclResult LogicLncl::Fit(const data::Dataset& train,
                               const crowd::AnnotationSet& annotations,
                               const data::Dataset& dev, util::Rng* rng) {
  return FitInternal(train, annotations, {}, dev, rng);
}

LogicLnclResult LogicLncl::FitSemiSupervised(
    const data::Dataset& train, const crowd::AnnotationSet& annotations,
    const std::vector<int>& gold_indices, const data::Dataset& dev,
    util::Rng* rng) {
  return FitInternal(train, annotations, gold_indices, dev, rng);
}

LogicLnclResult LogicLncl::FitInternal(const data::Dataset& train,
                                       const crowd::AnnotationSet& annotations,
                                       const std::vector<int>& gold_indices,
                                       const data::Dataset& dev,
                                       util::Rng* rng) {
  LogicLnclResult result;
  if (!model_) model_ = factory_(rng);
  std::unique_ptr<nn::Optimizer> optimizer =
      nn::MakeOptimizer(config_.optimizer);
  const std::vector<nn::Parameter*> params = model_->Params();

  // Deterministic parallel execution (config_.threads >= 1): a fixed slot
  // structure makes every reduction order independent of the thread count,
  // so any threads >= 1 produces bit-identical results. threads == 0 keeps
  // the legacy serial trajectory.
  const bool sharded = config_.threads >= 1;
  util::Parallelizer exec(std::max(1, config_.threads));
  std::vector<std::unique_ptr<models::Model>> replicas;
  std::vector<models::Model*> slot_models;
  if (sharded && factory_) {
    // Replica initial weights are irrelevant (values are synced from the
    // master before every batch); a fixed-seed throwaway rng keeps the
    // caller's stream untouched.
    util::Rng replica_rng(0x51ced0c5u);
    slot_models.push_back(model_.get());
    for (int s = 1; s < util::Parallelizer::kSlots; ++s) {
      replicas.push_back(factory_(&replica_rng));
      slot_models.push_back(replicas.back().get());
    }
  }

  // Line 1 of Algorithm 1: initialize q_f with Majority Voting.
  qf_ = annotations.MajorityVote(inference::ItemsPerInstance(train));
  confusions_.clear();

  // Semi-supervised anchors: one-hot gold targets that the E-step preserves.
  auto anchor = [&]() {
    for (int idx : gold_indices) {
      util::Matrix& q = qf_[idx];
      q.Zero();
      for (int t = 0; t < q.rows(); ++t) {
        q(t, train.ItemLabel(idx, t)) = 1.0f;
      }
    }
  };
  anchor();

  const std::vector<float> weights =
      config_.weighted_loss ? AnnotatorCountWeights(annotations)
                            : std::vector<float>();

  EarlyStopper stopper(config_.patience);
  std::vector<util::Matrix> best_qf = qf_;
  crowd::ConfusionSet best_confusions;

  const eval::Predictor student = [this](const data::Instance& x) {
    return model_->Predict(x);
  };

  // Telemetry (src/obs): PhaseSpan both accumulates PhaseSeconds and, when
  // tracing is active, emits one trace event per phase; the observer (if
  // any) gets one EpochRecord per epoch. All of it only reads trainer state,
  // so an instrumented run is bit-identical to a plain one.
  obs::RunObserver* const observer = config_.run_observer;
  const bool observe = observer != nullptr;
  crowd::ConfusionSet prev_confusions;  // observer-only drift baseline
  std::vector<std::pair<std::string, uint64_t>> prev_counters;
  if (observe && obs::Metrics::enabled()) {
    prev_counters = obs::Metrics::CounterTotals();
  }

  {
    obs::PhaseSpan fit_span("fit", &result.phase_seconds.total);
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      LNCL_TRACE_SPAN_ARG("epoch", "epoch", epoch);
      const PhaseSeconds phases_before = result.phase_seconds;
      nn::ApplyLrSchedule(config_.optimizer, epoch, optimizer.get());

      // ---- Pseudo-M-step: network (Eq. 8/10/11), then annotators (Eq. 12).
      double loss = 0.0;
      {
        obs::PhaseSpan span("m_step", &result.phase_seconds.m_step);
        loss = slot_models.empty()
                   ? RunMinibatchEpoch(train, qf_, weights, config_.batch_size,
                                       model_.get(), optimizer.get(), rng)
                   : RunMinibatchEpochSharded(
                         train, qf_, weights, config_.batch_size, model_.get(),
                         slot_models, optimizer.get(), rng, &exec);
      }
      result.loss_curve.push_back(loss);
      {
        obs::PhaseSpan span("confusion", &result.phase_seconds.confusion);
        UpdateConfusions(qf_, annotations, config_.confusion_smoothing,
                         &confusions_, sharded ? &exec : nullptr);
      }

      // ---- Pseudo-E-step: q_a (Eq. 13), q_b (Eq. 15), q_f (Eq. 9).
      // Instances are independent (each slot writes only its own qf_ rows),
      // so the parallel sweep is deterministic regardless of slot structure.
      const double k = config_.k_schedule(epoch);
      const bool project =
          projector_ != nullptr && config_.use_rules_in_training && k > 0.0;
      // Hoisted likelihood logs (once per annotator per epoch rather than
      // once per labeled instance; same float values as the in-line logs).
      const std::vector<util::Matrix> log_pi =
          config_.batch_predict ? LogConfusions(confusions_)
                                : std::vector<util::Matrix>();
      std::vector<ProjectionStats> slot_stats(util::Parallelizer::kSlots);
      {
        obs::PhaseSpan span("e_step", &result.phase_seconds.e_step);
        exec.RunSlots(util::Parallelizer::kSlots, [&](int slot) {
          LNCL_TRACE_SPAN_ARG("e_step_shard", "slot", slot);
          const auto [begin, end] = util::Parallelizer::SlotRange(
              train.size(), slot, util::Parallelizer::kSlots);
          if (obs::Metrics::enabled() && end > begin) {
            static obs::Counter* const instances =
                obs::Metrics::GetCounter("e_step.instances");
            instances->Add(static_cast<uint64_t>(end - begin));
          }
          if (config_.batch_predict) {
            if (begin >= end) return;
            std::vector<const data::Instance*> xs;
            xs.reserve(end - begin);
            for (int i = begin; i < end; ++i) {
              xs.push_back(&train.instances[i]);
            }
            std::vector<util::Matrix> probs;
            model_->PredictBatch(xs, &probs);
            std::vector<util::Matrix> qa(xs.size());
            for (int i = begin; i < end; ++i) {
              qa[i - begin] =
                  ComputeQa(probs[i - begin], annotations.instance(i), log_pi);
            }
            if (project) {
              // ProjectBatch rewrites in place, so q_a is copied to blend
              // below.
              std::vector<util::Matrix> qb = qa;
              projector_->ProjectBatch(xs, &qb, config_.C);
              for (size_t j = 0; j < qa.size(); ++j) {
                if (observe) slot_stats[slot].Accumulate(qa[j], qb[j]);
                util::Matrix& qaj = qa[j];
                const util::Matrix& qbj = qb[j];
                for (int t = 0; t < qaj.rows(); ++t) {
                  for (int c = 0; c < qaj.cols(); ++c) {
                    qaj(t, c) = static_cast<float>((1.0 - k) * qaj(t, c) +
                                                   k * qbj(t, c));
                  }
                }
              }
            }
            // Eq. 9 blend of two simplexes stays a simplex.
            for (const util::Matrix& q : qa) LNCL_AUDIT_SIMPLEX(q);
            for (int i = begin; i < end; ++i) {
              qf_[i] = std::move(qa[i - begin]);
            }
            return;
          }
          for (int i = begin; i < end; ++i) {
            const data::Instance& x = train.instances[i];
            const util::Matrix probs = model_->Predict(x);
            util::Matrix qa =
                ComputeQa(probs, annotations.instance(i), confusions_);
            if (project) {
              const util::Matrix qb = projector_->Project(x, qa, config_.C);
              if (observe) slot_stats[slot].Accumulate(qa, qb);
              for (int t = 0; t < qa.rows(); ++t) {
                for (int c = 0; c < qa.cols(); ++c) {
                  qa(t, c) = static_cast<float>((1.0 - k) * qa(t, c) +
                                                k * qb(t, c));
                }
              }
            }
            LNCL_AUDIT_SIMPLEX(qa);
            qf_[i] = std::move(qa);
          }
        });
        anchor();
      }

      // ---- Model selection on dev.
      double dev_score = 0.0;
      {
        obs::PhaseSpan span("dev_eval", &result.phase_seconds.dev_eval);
        dev_score = config_.batch_predict ? eval::DevScore(*model_, dev)
                                          : eval::DevScore(student, dev);
      }
      result.dev_curve.push_back(dev_score);
      const int prev_best = stopper.best_epoch();
      const bool stop = stopper.Update(dev_score, params);
      if (stopper.best_epoch() != prev_best) {
        best_qf = qf_;
        best_confusions = confusions_;
      }
      LNCL_LOG(Debug) << "epoch " << epoch << " loss " << loss << " dev "
                      << dev_score << " k " << k;
      if (observe) {
        obs::EpochRecord rec;
        rec.epoch = epoch;
        rec.k = k;
        rec.loss = loss;
        rec.dev_score = dev_score;
        rec.is_best = stopper.best_epoch() != prev_best;
        ProjectionStats stats;  // fixed slot-order merge
        for (const ProjectionStats& s : slot_stats) stats.Merge(s);
        rec.projected_items = stats.rows;
        if (stats.rows > 0) {
          rec.mean_kl_qa_qb = stats.kl_sum / static_cast<double>(stats.rows);
          rec.rule_satisfaction = static_cast<double>(stats.argmax_kept) /
                                  static_cast<double>(stats.rows);
        }
        double diag = 0.0;
        double drift = 0.0;
        for (size_t a = 0; a < confusions_.size(); ++a) {
          diag += confusions_[a].Reliability();
          if (prev_confusions.size() == confusions_.size()) {
            drift += confusions_[a].Distance(prev_confusions[a]);
          }
        }
        if (!confusions_.empty()) {
          const double n = static_cast<double>(confusions_.size());
          rec.confusion_diag_mass = diag / n;
          rec.confusion_drift = drift / n;
        }
        prev_confusions = confusions_;
        rec.m_step_seconds = result.phase_seconds.m_step - phases_before.m_step;
        rec.confusion_seconds =
            result.phase_seconds.confusion - phases_before.confusion;
        rec.e_step_seconds = result.phase_seconds.e_step - phases_before.e_step;
        rec.dev_eval_seconds =
            result.phase_seconds.dev_eval - phases_before.dev_eval;
        if (rec.e_step_seconds > 0.0) {
          rec.e_step_instances_per_second =
              static_cast<double>(train.size()) / rec.e_step_seconds;
        }
        if (obs::Metrics::enabled()) {
          std::vector<std::pair<std::string, uint64_t>> now =
              obs::Metrics::CounterTotals();
          // Both snapshots are sorted by name; counters registered mid-epoch
          // simply have no `before` entry (delta = total).
          size_t pi = 0;
          for (const auto& [metric_name, total] : now) {
            while (pi < prev_counters.size() &&
                   prev_counters[pi].first < metric_name) {
              ++pi;
            }
            uint64_t before_total = 0;
            if (pi < prev_counters.size() &&
                prev_counters[pi].first == metric_name) {
              before_total = prev_counters[pi].second;
            }
            if (total > before_total) {
              rec.metric_deltas.emplace_back(metric_name,
                                             total - before_total);
            }
          }
          prev_counters = std::move(now);
        }
        observer->OnEpoch(rec);
      }
      if (stop) break;
    }

    stopper.Restore(params);
    if (!best_confusions.empty()) {
      qf_ = std::move(best_qf);
      confusions_ = std::move(best_confusions);
    }
  }
  result.best_dev_score = stopper.best_score();
  result.best_epoch = stopper.best_epoch();
  result.epochs_run = stopper.epochs_seen();
  result.early_stopped = result.epochs_run < config_.epochs;
  if (observe) {
    obs::FitSummary summary;
    summary.best_epoch = result.best_epoch;
    summary.epochs_run = result.epochs_run;
    summary.early_stopped = result.early_stopped;
    summary.best_dev_score = result.best_dev_score;
    observer->OnFitEnd(summary);
  }
  return result;
}

void LogicLncl::SaveModel(std::ostream& os) const {
  LNCL_CHECK(model_ != nullptr);
  nn::SaveParams(os, const_cast<models::Model*>(model_.get())->Params());
}

bool LogicLncl::LoadModel(std::istream& is) {
  if (model_ == nullptr) return false;
  return nn::LoadParams(is, model_->Params());
}

util::Matrix LogicLncl::PredictStudent(const data::Instance& x) const {
  return model_->Predict(x);
}

util::Matrix LogicLncl::PredictTeacher(const data::Instance& x) const {
  util::Matrix probs = model_->Predict(x);
  if (projector_ == nullptr) return probs;
  return projector_->Project(x, probs, config_.C);
}

std::vector<util::Matrix> LogicLncl::PredictStudentBatch(
    const data::Dataset& dataset) const {
  // quantized_predict applies only to these batched serving entries — the
  // E-step and training always see the fp32 model. The toggle requantizes
  // eagerly (once per call, single-threaded here) and is reset before
  // returning so later Fit/Predict calls are untouched.
  LNCL_TRACE_SPAN_ARG("serve_batch", "quantized",
                      config_.quantized_predict ? 1 : 0);
  if (config_.quantized_predict) model_->SetQuantizedPredict(true);
  std::vector<util::Matrix> probs = model_->PredictBatch(dataset);
  if (config_.quantized_predict) model_->SetQuantizedPredict(false);
  return probs;
}

std::vector<util::Matrix> LogicLncl::PredictTeacherBatch(
    const data::Dataset& dataset) const {
  std::vector<const data::Instance*> xs;
  xs.reserve(dataset.instances.size());
  for (const data::Instance& x : dataset.instances) xs.push_back(&x);
  std::vector<util::Matrix> probs;
  LNCL_TRACE_SPAN_ARG("serve_batch", "quantized",
                      config_.quantized_predict ? 1 : 0);
  if (config_.quantized_predict) model_->SetQuantizedPredict(true);
  model_->PredictBatch(xs, &probs);
  if (config_.quantized_predict) model_->SetQuantizedPredict(false);
  if (projector_ != nullptr) projector_->ProjectBatch(xs, &probs, config_.C);
  return probs;
}

}  // namespace lncl::core
