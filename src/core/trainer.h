#pragma once

#include <vector>

#include "crowd/annotation.h"
#include "crowd/confusion.h"
#include "data/dataset.h"
#include "models/model.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace lncl::core {

// Shared machinery of the EM-style trainers (Logic-LNCL, AggNet, Raykar,
// two-stage, ablations). Kept as free functions / small value types so each
// trainer reads like its pseudo-code.

// One epoch of minibatch soft-target training: shuffles the instance order,
// and for every minibatch accumulates gradients of
//   weight_i * CE(targets[i], p(x_i))
// before an optimizer step (Eq. 11). `weights` may be empty (all ones) —
// when present it carries num(J^(i)) for the weighted objective (Eq. 10).
// Returns the mean per-instance loss.
double RunMinibatchEpoch(const data::Dataset& dataset,
                         const std::vector<util::Matrix>& targets,
                         const std::vector<float>& weights, int batch_size,
                         models::Model* model, nn::Optimizer* optimizer,
                         util::Rng* rng);

// Deterministic sharded variant of RunMinibatchEpoch.
//
// Each minibatch is split into util::Parallelizer::kSlots contiguous slots;
// slot s accumulates its gradients into slot_models[s] (independent model
// replicas sharing the master's architecture — slot_models[0] may be the
// master itself). After the slots run — on however many threads `exec`
// provides — losses and gradients are merged into the master in slot-index
// order and the optimizer steps the master, whose values are then copied
// back into the replicas. Dropout draws come from a per-instance generator
// keyed by (epoch seed, position in the shuffled order), so the sampled
// masks do not depend on execution order either. The result is bit-identical
// for any thread count.
//
// Note the training trajectory differs from RunMinibatchEpoch's (different
// dropout stream and summation order); the two are separate, individually
// deterministic code paths.
double RunMinibatchEpochSharded(const data::Dataset& dataset,
                                const std::vector<util::Matrix>& targets,
                                const std::vector<float>& weights,
                                int batch_size, models::Model* master,
                                const std::vector<models::Model*>& slot_models,
                                nn::Optimizer* optimizer, util::Rng* rng,
                                util::Parallelizer* exec);

// Truth posterior of one instance given the classifier prior `probs`
// (items x K) and the crowd labels, under the confusion-matrix likelihood —
// Eq. 13 / Eq. A.2, computed in log space per item.
util::Matrix ComputeQa(const util::Matrix& probs,
                       const crowd::InstanceAnnotations& annotations,
                       const crowd::ConfusionSet& confusions);

// Per-annotator K x K tables log_pi[a](m, y) = float(log(max(pi_a(m, y),
// 1e-300))) — the likelihood logs ComputeQa needs, hoisted so an E-step
// evaluates each annotator's logs once instead of once per labeled instance.
std::vector<util::Matrix> LogConfusions(const crowd::ConfusionSet& confusions);

// ComputeQa against precomputed LogConfusions tables. Bit-identical to the
// overload above: the tables hold the very float values that overload adds,
// so the accumulation sequence is unchanged.
util::Matrix ComputeQa(const util::Matrix& probs,
                       const crowd::InstanceAnnotations& annotations,
                       const std::vector<util::Matrix>& log_confusions);

// Closed-form confusion-matrix update from soft truth estimates — Eq. 12.
// `smoothing` is an additive pseudo-count before row normalization.
// When `exec` is non-null the per-instance counts are accumulated into
// util::Parallelizer::kSlots per-slot buffers and merged in slot order —
// deterministic for any thread count, but a different (fixed) summation
// order than the serial exec == nullptr path.
void UpdateConfusions(const std::vector<util::Matrix>& qf,
                      const crowd::AnnotationSet& annotations,
                      double smoothing, crowd::ConfusionSet* confusions,
                      util::Parallelizer* exec = nullptr);

// Early stopping on a dev score with patience, snapshotting the best
// parameter values. Typical use:
//
//   EarlyStopper stopper(patience);
//   for (epoch ...) {
//     ... train ...
//     if (stopper.Update(dev_score, params)) break;
//   }
//   stopper.Restore(params);
class EarlyStopper {
 public:
  explicit EarlyStopper(int patience) : patience_(patience) {}

  // Records the epoch score; returns true when training should stop.
  bool Update(double score, const std::vector<nn::Parameter*>& params);

  // Restores the best snapshot into `params` (no-op if none yet).
  void Restore(const std::vector<nn::Parameter*>& params) const;

  double best_score() const { return best_score_; }
  int best_epoch() const { return best_epoch_; }
  int epochs_seen() const { return epoch_; }

 private:
  int patience_;
  int epoch_ = 0;
  int best_epoch_ = -1;
  int since_best_ = 0;
  double best_score_ = -1e300;
  std::vector<util::Matrix> snapshot_;
};

// Instance weights num(J^(i)) for the Eq. 10 objective.
std::vector<float> AnnotatorCountWeights(const crowd::AnnotationSet& ann);

}  // namespace lncl::core

