#pragma once

#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "logic/posterior_reg.h"
#include "logic/rule.h"
#include "models/model.h"

namespace lncl::core {

// The paper's "A-but-B" sentiment rule (Eqs. 16-17):
//
//   positive(S) => sigma(clause B)_+        (weight 1)
//   negative(S) => sigma(clause B)_-        (weight 1)
//
// For a sentence containing the contrast conjunction, the rule value of the
// candidate label equals the classifier's probability of that label on
// clause B alone, so the Eq. 15 projection pulls the posterior toward the
// B-clause sentiment. Sentences without the marker are passed through
// unchanged (no grounding is formed).
//
// The projector consults the classifier (`model`), whose parameters evolve
// across the EM-alike epochs — groundings are therefore re-evaluated at
// every projection, as in the paper. Whether a grounding is *formed*,
// however, depends only on the instance's static token data, so that
// decision is cached per instance address; instances handed to Project /
// ProjectBatch must outlive the projector and must not be mutated.
class SentimentButRule : public logic::RuleProjector {
 public:
  // `marker_token`: vocabulary id of the conjunction that activates the rule
  // ("but" for the main method; "however" for the our-other-rules ablation).
  // `weight`: w_l of both rules.
  SentimentButRule(const models::Model* model, int marker_token,
                   double weight = 1.0);

  util::Matrix Project(const data::Instance& x, const util::Matrix& q,
                       double C) const override;

  // Batched projection: collects the grounded instances' B clauses and runs
  // them through one Model::PredictBatch call instead of one Predict each.
  // Bit-identical to looping Project.
  void ProjectBatch(const std::vector<const data::Instance*>& xs,
                    std::vector<util::Matrix>* qs, double C) const override;

  // The underlying PSL rules (atoms: 0 = positive(S), 1 = sigma(B)+,
  // 2 = negative(S), 3 = sigma(B)-). Exposed for inspection/tests.
  const logic::RuleSet& rules() const { return rules_; }

 private:
  // Whether x activates the rule (contrast marker present with a non-empty B
  // clause); memoized by instance address under a shared mutex.
  bool GroundingFormed(const data::Instance& x) const;

  // Eq. 15 projection of q given the clause-B prediction pb (1 x 2).
  util::Matrix ApplyRule(const util::Matrix& q, const util::Matrix& pb,
                         double C) const;

  const models::Model* model_;  // not owned
  int marker_token_;
  logic::RuleSet rules_;

  mutable std::shared_mutex cache_mu_;
  mutable std::unordered_map<const data::Instance*, bool> grounding_cache_;
};

}  // namespace lncl::core

