#include "core/ner_rules.h"

#include "data/bio.h"
#include "util/check.h"

namespace lncl::core {

using logic::Formula;

logic::RuleSet MakeTypeValidityRule() {
  logic::RuleSet rules;
  rules.Add(Formula::Implies(
                Formula::Atom(2, "equal(t_i,I-X)"),
                Formula::Or(Formula::Atom(0, "equal(t_prev,B-X)"),
                            Formula::Atom(1, "equal(t_prev,I-X)"))),
            1.0, "inside-continues-entity");
  return rules;
}

logic::RuleSet MakeTypeTransitionRules(double w_begin, double w_inside) {
  logic::RuleSet rules;
  if (w_begin > 0.0) {
    rules.Add(Formula::Implies(Formula::Atom(2, "equal(t_i,I-X)"),
                               Formula::Atom(0, "equal(t_prev,B-X)")),
              w_begin, "inside-after-begin");
  }
  if (w_inside > 0.0) {
    rules.Add(Formula::Implies(Formula::Atom(2, "equal(t_i,I-X)"),
                               Formula::Atom(1, "equal(t_prev,I-X)")),
              w_inside, "inside-after-inside");
  }
  return rules;
}

namespace {

util::Matrix CompilePenalty(const logic::RuleSet& type_rules) {
  const int k = data::kNumBioLabels;
  util::Matrix pen(k, k);
  for (int type = 0; type < data::kNumEntityTypes; ++type) {
    const int b_label = data::BeginLabel(type);
    const int i_label = data::InsideLabel(type);
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        const double prev_is_begin = a == b_label ? 1.0 : 0.0;
        const double prev_is_inside = a == i_label ? 1.0 : 0.0;
        const double cur_is_inside = b == i_label ? 1.0 : 0.0;
        pen(a, b) += static_cast<float>(type_rules.Penalty(
            {prev_is_begin, prev_is_inside, cur_is_inside}));
      }
    }
  }
  // Grounded rule penalties feed exp(-C * pen) potentials; a non-finite or
  // mis-shaped table would corrupt every DP projection downstream.
  LNCL_AUDIT_SHAPE(pen, k, k);
  LNCL_AUDIT_FINITE(pen);
  return pen;
}

}  // namespace

util::Matrix BuildNerTransitionPenalty() {
  return CompilePenalty(MakeTypeValidityRule());
}

util::Matrix BuildNerTransitionPenaltyWeighted(double w_begin,
                                               double w_inside) {
  return CompilePenalty(MakeTypeTransitionRules(w_begin, w_inside));
}

util::Matrix BuildBadNerTransitionPenalty() {
  return CompilePenalty(MakeTypeTransitionRules(1.0, 0.0));
}

std::unique_ptr<logic::SequenceRuleProjector> MakeNerRuleProjector() {
  return std::make_unique<logic::SequenceRuleProjector>(
      BuildNerTransitionPenalty());
}

std::unique_ptr<logic::SequenceRuleProjector> MakeWeightedNerRuleProjector(
    double w_begin, double w_inside) {
  return std::make_unique<logic::SequenceRuleProjector>(
      BuildNerTransitionPenaltyWeighted(w_begin, w_inside));
}

std::unique_ptr<logic::SequenceRuleProjector> MakeBadNerRuleProjector() {
  return std::make_unique<logic::SequenceRuleProjector>(
      BuildBadNerTransitionPenalty());
}

}  // namespace lncl::core
