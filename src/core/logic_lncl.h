#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/trainer.h"
#include "crowd/annotation.h"
#include "crowd/confusion.h"
#include "data/dataset.h"
#include "logic/posterior_reg.h"
#include "models/model.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace lncl::obs {
class RunObserver;
}  // namespace lncl::obs

namespace lncl::core {

// Schedule for the imitation strength k as a function of the (0-based)
// epoch. The paper uses min{1, 1 - 0.94^t} (sentiment) and
// min{0.8, 1 - 0.90^t} (NER).
using KSchedule = std::function<double(int)>;

KSchedule SentimentKSchedule();  // min{1.0, 1 - 0.94^t}
KSchedule NerKSchedule();        // min{0.8, 1 - 0.90^t}
KSchedule ConstantK(double k);

// Configuration of the Logic-LNCL learner (Table I of the paper).
struct LogicLnclConfig {
  double C = 5.0;                    // posterior-regularization strength
  KSchedule k_schedule;              // imitation strength (default: 0)
  bool weighted_loss = false;        // Eq. 10 (weight by num annotators)
  bool use_rules_in_training = true; // false = w/o-Rule ablation (AggNet)
  int epochs = 30;
  int batch_size = 50;
  int patience = 5;
  double confusion_smoothing = 0.01;
  nn::OptimizerConfig optimizer;
  // Intra-model parallelism (see DESIGN.md §5).
  //   0  — legacy serial training path (the historical trajectory).
  //  >=1 — deterministic sharded path with that many threads: the E-step,
  //        the confusion M-step, and (when a model factory is available)
  //        minibatch gradient accumulation run over fixed slot partitions
  //        with fixed-order reductions, so results are bit-identical for
  //        every threads >= 1 setting. threads = 1 runs the same sharded
  //        trajectory serially.
  int threads = 0;
  // Use Model::PredictBatch for the E-step sweep, dev evaluation, and
  // rule projection (one batched clause-B prediction per slot instead of one
  // Predict per grounded instance). Bit-identical to the per-instance path
  // at any threads setting — the batched kernels only add GEMM rows — so
  // this is purely a performance switch; false keeps the PR-1-era
  // per-instance pipeline (the bench baseline).
  bool batch_predict = true;
  // Serve PredictStudentBatch / PredictTeacherBatch from post-training int8
  // weights (per-row symmetric quantization, fp32 accumulate; see
  // nn/quantize.h and DESIGN.md §9). Inference-only: training, the E-step,
  // and the per-instance Predict entries always run fp32. Off by default;
  // the bench accuracy gate records the int8-vs-fp32 argmax agreement.
  bool quantized_predict = false;
  // Optional telemetry sink (src/obs/run_log.h): receives one EpochRecord
  // per epoch (loss, dev score, k(t), KL(q_a || q_b), rule satisfaction,
  // confusion diagnostics, phase seconds) and a FitSummary when Fit returns.
  // Observation only — attaching an observer never changes the fitted
  // numbers. Not owned; null (default) skips all diagnostic computation.
  obs::RunObserver* run_observer = nullptr;
};

// Wall-clock breakdown of the Fit epoch loop, summed over epochs (seconds).
struct PhaseSeconds {
  double m_step = 0.0;     // minibatch network updates (Eq. 8/10/11)
  double confusion = 0.0;  // closed-form annotator update (Eq. 12)
  double e_step = 0.0;     // q_a / q_b / q_f sweep (Eq. 13/15/9)
  double dev_eval = 0.0;   // dev-set model selection
  double total = 0.0;      // the whole Fit call
};

// Summary of a fitted run.
//
// Curve bookkeeping: dev_curve / loss_curve hold one entry per epoch that
// actually ran (size == epochs_run, which can be < config.epochs when early
// stopping fires). best_epoch indexes into those curves and names the epoch
// whose parameters, q_f, and confusions were restored — NOT the last epoch
// run; when early_stopped is true the curves carry a post-best tail of
// `patience` non-improving epochs whose updates were discarded.
struct LogicLnclResult {
  double best_dev_score = 0.0;  // dev accuracy / span-F1 at the best epoch
  int best_epoch = -1;          // epoch restored by model selection
  int epochs_run = 0;           // epochs actually executed (curve length)
  bool early_stopped = false;   // true iff patience ended the run early
  std::vector<double> dev_curve;   // dev score per epoch (student)
  std::vector<double> loss_curve;  // mean training loss per epoch
  PhaseSeconds phase_seconds;      // where the time went
};

// Logic-guided Learning from Noisy Crowd Labels: the EM-alike iterative
// logic knowledge distillation framework of the paper (Algorithm 1).
//
// Per epoch:
//   pseudo-M-step: minibatch updates of the network on targets q_f (Eq. 8 /
//     Eq. 10), then the closed-form annotator update (Eq. 12) with q_f;
//   pseudo-E-step: q_a from Bayes' rule over the current network and
//     confusions (Eq. 13); q_b by projecting q_a through the rule set
//     (Eq. 15); q_f = (1-k) q_a + k q_b (Eq. 9).
//
// q_f is initialized with Majority Voting. Early stopping selects the epoch
// with the best dev-set score of the student network and restores its
// parameters, q_f, and confusions.
//
// Prediction: PredictStudent is the raw network p(t|x; Theta); PredictTeacher
// additionally projects the prediction through Eq. 15 with q_a replaced by
// p(t|x; Theta) ("employ q_b(t) at test phase").
class LogicLncl {
 public:
  // `projector` may be null (no rules; with k=0 this is exactly the AggNet /
  // Raykar-style EM depending on the model factory). Not owned.
  LogicLncl(LogicLnclConfig config, models::ModelFactory factory,
            const logic::RuleProjector* projector);

  // Takes a pre-built model instead of a factory. This is how the sentiment
  // "but" rule is wired: the projector must consult the very model being
  // trained, so the caller builds the model first, binds the projector to
  // it, and hands both over. `replica_factory` (optional) builds
  // architecture-matched replicas for the sharded training path when
  // config.threads >= 1; without it, minibatch training stays on the legacy
  // serial path (the parallel E-step still applies).
  LogicLncl(LogicLnclConfig config, std::unique_ptr<models::Model> model,
            const logic::RuleProjector* projector,
            models::ModelFactory replica_factory = nullptr);

  // Trains on crowd labels; `dev` (with gold labels) drives early stopping.
  LogicLnclResult Fit(const data::Dataset& train,
                      const crowd::AnnotationSet& annotations,
                      const data::Dataset& dev, util::Rng* rng);

  // Semi-supervised variant (after Atarashi et al., 2018): instances whose
  // index appears in `gold_indices` anchor q_f to their one-hot ground truth
  // throughout training — the E-step never overwrites them. Useful when a
  // small expert-labeled subset exists next to the crowd labels.
  LogicLnclResult FitSemiSupervised(const data::Dataset& train,
                                    const crowd::AnnotationSet& annotations,
                                    const std::vector<int>& gold_indices,
                                    const data::Dataset& dev, util::Rng* rng);

  // Checkpointing: persists / restores the trained network parameters
  // (names and shapes must match; see nn/serialize.h). The model must exist
  // (i.e. Fit ran, or the pre-built-model constructor was used).
  void SaveModel(std::ostream& os) const;
  bool LoadModel(std::istream& is);

  util::Matrix PredictStudent(const data::Instance& x) const;
  util::Matrix PredictTeacher(const data::Instance& x) const;

  // Batched counterparts over a whole dataset (bit-identical to looping the
  // per-instance forms; see Model::PredictBatch).
  std::vector<util::Matrix> PredictStudentBatch(
      const data::Dataset& dataset) const;
  std::vector<util::Matrix> PredictTeacherBatch(
      const data::Dataset& dataset) const;

  // Final truth estimates q_f on the training set (the paper's "Inference"
  // metric for Logic-LNCL) and annotator confusion estimates (Figures 6/7).
  const std::vector<util::Matrix>& qf() const { return qf_; }
  const crowd::ConfusionSet& confusions() const { return confusions_; }

  models::Model* model() { return model_.get(); }
  const models::Model* model() const { return model_.get(); }

  // Serving-time switch for config.quantized_predict (see the config field):
  // affects only the batched Predict*Batch entries. The bench int8 gate uses
  // this to score the same fitted model both ways.
  void SetQuantizedPredict(bool on) { config_.quantized_predict = on; }

 private:
  LogicLnclResult FitInternal(const data::Dataset& train,
                              const crowd::AnnotationSet& annotations,
                              const std::vector<int>& gold_indices,
                              const data::Dataset& dev, util::Rng* rng);

  LogicLnclConfig config_;
  models::ModelFactory factory_;
  const logic::RuleProjector* projector_;

  std::unique_ptr<models::Model> model_;
  std::vector<util::Matrix> qf_;
  crowd::ConfusionSet confusions_;
};

}  // namespace lncl::core

